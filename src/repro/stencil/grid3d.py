"""The 27-pt 3D stencil graph (3DS-IVC substrate).

A 27-pt stencil on an ``X×Y×Z`` grid connects ``(i, j, k)`` and
``(i', j', k')`` iff all three coordinate differences are at most 1 in
absolute value (Definition 3 of the paper).  Mirrors
:class:`~repro.stencil.grid2d.StencilGrid2D` with

* vectorized CSR adjacency for the 27-pt graph and its bipartite 7-pt
  relaxation,
* the :math:`K_8` unit-cube blocks behind the max-clique lower bound,
* the layer decomposition used by the 4-approximation Bipartite
  Decomposition (each ``z`` layer is a 9-pt stencil; the layer graph is a
  chain).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.stencil.generic import CSRGraph
from repro.stencil.grid2d import StencilGrid2D

#: 26 neighbor offsets of the 27-pt stencil.
OFFSETS_27PT = tuple(
    (di, dj, dk)
    for di in (-1, 0, 1)
    for dj in (-1, 0, 1)
    for dk in (-1, 0, 1)
    if (di, dj, dk) != (0, 0, 0)
)
#: 6 neighbor offsets of the 7-pt stencil.
OFFSETS_7PT = ((-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1))


class StencilGrid3D:
    """Geometry and adjacency of an ``X×Y×Z`` 27-pt stencil."""

    def __init__(self, X: int, Y: int, Z: int) -> None:
        if X < 1 or Y < 1 or Z < 1:
            raise ValueError("grid dimensions must be positive")
        self.X = int(X)
        self.Y = int(Y)
        self.Z = int(Z)

    # ------------------------------------------------------------------ shape
    @property
    def shape(self) -> tuple[int, int, int]:
        """The ``(X, Y, Z)`` grid shape."""
        return (self.X, self.Y, self.Z)

    @property
    def num_vertices(self) -> int:
        """Total vertex count ``X * Y * Z``."""
        return self.X * self.Y * self.Z

    def vertex_id(self, i, j, k):
        """Flat row-major id(s): ``(i * Y + j) * Z + k``."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        return (i * self.Y + j) * self.Z + k

    def coords(self, v):
        """Grid coordinate(s) ``(i, j, k)`` of flat id(s) ``v``."""
        v = np.asarray(v, dtype=np.int64)
        k = v % self.Z
        rest = v // self.Z
        return rest // self.Y, rest % self.Y, k

    def in_bounds(self, i, j, k):
        """Vectorized bounds check."""
        i = np.asarray(i)
        j = np.asarray(j)
        k = np.asarray(k)
        return (i >= 0) & (i < self.X) & (j >= 0) & (j < self.Y) & (k >= 0) & (k < self.Z)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StencilGrid3D({self.X}, {self.Y}, {self.Z})"

    def __eq__(self, other) -> bool:
        return isinstance(other, StencilGrid3D) and self.shape == other.shape

    def __hash__(self) -> int:
        return hash(("StencilGrid3D", self.shape))

    # -------------------------------------------------------------- adjacency
    def _build_csr(self, offsets) -> CSRGraph:
        i, j, k = np.meshgrid(
            np.arange(self.X, dtype=np.int64),
            np.arange(self.Y, dtype=np.int64),
            np.arange(self.Z, dtype=np.int64),
            indexing="ij",
        )
        i, j, k = i.ravel(), j.ravel(), k.ravel()
        src_parts = []
        dst_parts = []
        for di, dj, dk in offsets:
            ni, nj, nk = i + di, j + dj, k + dk
            mask = self.in_bounds(ni, nj, nk)
            src_parts.append(self.vertex_id(i[mask], j[mask], k[mask]))
            dst_parts.append(self.vertex_id(ni[mask], nj[mask], nk[mask]))
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRGraph(indptr=indptr, indices=dst)

    @cached_property
    def csr(self) -> CSRGraph:
        """CSR adjacency of the full 27-pt stencil."""
        return self._build_csr(OFFSETS_27PT)

    @cached_property
    def csr_7pt(self) -> CSRGraph:
        """CSR adjacency of the bipartite 7-pt relaxation."""
        return self._build_csr(OFFSETS_7PT)

    def neighbors(self, i: int, j: int, k: int) -> list[tuple[int, int, int]]:
        """The in-bounds 27-pt neighbors of ``(i, j, k)`` as coordinates."""
        out = []
        for di, dj, dk in OFFSETS_27PT:
            ni, nj, nk = i + di, j + dj, k + dk
            if 0 <= ni < self.X and 0 <= nj < self.Y and 0 <= nk < self.Z:
                out.append((ni, nj, nk))
        return out

    # ----------------------------------------------------------------- blocks
    @cached_property
    def k8_blocks(self) -> np.ndarray:
        """All :math:`K_8` unit cubes as an ``((X-1)(Y-1)(Z-1), 8)`` array.

        The eight corners of a unit cube are pairwise adjacent in the 27-pt
        stencil, so each block's weight sum lower-bounds ``maxcolor*``.
        """
        X, Y, Z = self.shape
        if X < 2 or Y < 2 or Z < 2:
            return np.empty((0, 8), dtype=np.int64)
        i, j, k = np.meshgrid(
            np.arange(X - 1, dtype=np.int64),
            np.arange(Y - 1, dtype=np.int64),
            np.arange(Z - 1, dtype=np.int64),
            indexing="ij",
        )
        i, j, k = i.ravel(), j.ravel(), k.ravel()
        corners = [
            self.vertex_id(i + di, j + dj, k + dk)
            for di in (0, 1)
            for dj in (0, 1)
            for dk in (0, 1)
        ]
        return np.column_stack(corners)

    def block_weight_sums(self, weights: np.ndarray) -> np.ndarray:
        """Sum of ``weights`` over each :math:`K_8` block (vectorized)."""
        weights = np.asarray(weights)
        if len(self.k8_blocks) == 0:
            return np.empty(0, dtype=weights.dtype)
        return weights[self.k8_blocks].sum(axis=1)

    # ----------------------------------------------------------------- layers
    def layer_ids(self, k: int) -> np.ndarray:
        """Flat ids of the ``z = k`` layer, ordered row-major over ``(i, j)``.

        Each layer induces a 9-pt stencil on ``(X, Y)``; the graph of layers
        is a chain, which is what makes the 3D Bipartite Decomposition a
        4-approximation.
        """
        if not 0 <= k < self.Z:
            raise IndexError(f"layer {k} out of range for Z={self.Z}")
        i, j = np.meshgrid(
            np.arange(self.X, dtype=np.int64), np.arange(self.Y, dtype=np.int64), indexing="ij"
        )
        return self.vertex_id(i.ravel(), j.ravel(), np.full(i.size, k, dtype=np.int64))

    def layers(self) -> list[np.ndarray]:
        """All layers, ``k = 0 .. Z-1``."""
        return [self.layer_ids(k) for k in range(self.Z)]

    def layer_grid(self) -> StencilGrid2D:
        """The 2D stencil induced on every ``z`` layer."""
        return StencilGrid2D(self.X, self.Y)

    # -------------------------------------------------------------- orderings
    def line_by_line_order(self) -> np.ndarray:
        """Vertex permutation scanning lines then planes (paper's GLL).

        Vertices are visited by increasing ``i`` within a line, lines by
        increasing ``j`` within a plane, planes by increasing ``k``.
        """
        k, j, i = np.meshgrid(
            np.arange(self.Z, dtype=np.int64),
            np.arange(self.Y, dtype=np.int64),
            np.arange(self.X, dtype=np.int64),
            indexing="ij",
        )
        return self.vertex_id(i.ravel(), j.ravel(), k.ravel())

    def weights_as_grid(self, weights: np.ndarray) -> np.ndarray:
        """Reshape a flat weight vector to the ``(X, Y, Z)`` grid."""
        return np.asarray(weights).reshape(self.shape)
