"""Morton (Z-order) indexing for 2D and 3D grids.

The Greedy Z-Order heuristic (GZO, Section V.A of the paper) colors vertices
in the recursive Z-order of their grid coordinates instead of line-by-line, so
that no spatial dimension is favored.  Morton keys interleave the bits of the
coordinates; sorting by the key yields the Z-order traversal.

All functions are vectorized over numpy arrays of coordinates; keys are
computed with the classic bit-dilation ("magic numbers") method in O(1) word
operations per coordinate.
"""

from __future__ import annotations

import numpy as np

#: Maximum number of bits per coordinate supported by the 2D dilation below.
MAX_BITS_2D = 32
#: Maximum number of bits per coordinate supported by the 3D dilation below.
MAX_BITS_3D = 21


def _dilate_2(x: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of ``x`` so consecutive bits are 2 apart."""
    x = x.astype(np.uint64)
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def _dilate_3(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so consecutive bits are 3 apart."""
    x = x.astype(np.uint64)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _check_range(arr: np.ndarray, bits: int, name: str) -> np.ndarray:
    arr = np.asarray(arr, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= (1 << bits)):
        raise ValueError(f"{name} coordinates must lie in [0, 2**{bits})")
    return arr


def morton_key_2d(i, j) -> np.ndarray:
    """Morton keys for 2D coordinates (vectorized).

    Bit ``2k`` of the key is bit ``k`` of ``i`` and bit ``2k + 1`` is bit
    ``k`` of ``j``, so keys sort grid points in Z-order.
    """
    i = _check_range(i, MAX_BITS_2D, "2D")
    j = _check_range(j, MAX_BITS_2D, "2D")
    return _dilate_2(i) | (_dilate_2(j) << np.uint64(1))


def morton_key_3d(i, j, k) -> np.ndarray:
    """Morton keys for 3D coordinates (vectorized)."""
    i = _check_range(i, MAX_BITS_3D, "3D")
    j = _check_range(j, MAX_BITS_3D, "3D")
    k = _check_range(k, MAX_BITS_3D, "3D")
    return _dilate_3(i) | (_dilate_3(j) << np.uint64(1)) | (_dilate_3(k) << np.uint64(2))


def morton_argsort_2d(shape: tuple[int, int]) -> np.ndarray:
    """Z-order permutation of the row-major vertex ids of an ``X×Y`` grid.

    ``result[r]`` is the flat id (``i * Y + j``) of the ``r``-th vertex in
    Z-order traversal.
    """
    X, Y = shape
    i, j = np.meshgrid(np.arange(X), np.arange(Y), indexing="ij")
    keys = morton_key_2d(i.ravel(), j.ravel())
    return np.argsort(keys, kind="stable").astype(np.int64)


def morton_argsort_3d(shape: tuple[int, int, int]) -> np.ndarray:
    """Z-order permutation of the row-major vertex ids of an ``X×Y×Z`` grid."""
    X, Y, Z = shape
    i, j, k = np.meshgrid(np.arange(X), np.arange(Y), np.arange(Z), indexing="ij")
    keys = morton_key_3d(i.ravel(), j.ravel(), k.ravel())
    return np.argsort(keys, kind="stable").astype(np.int64)
