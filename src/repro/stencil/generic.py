"""CSR adjacency for arbitrary undirected graphs.

The coloring algorithms in :mod:`repro.core` only need, for each vertex, a
contiguous view of its neighbor ids.  A compressed-sparse-row layout
(``indptr``/``indices``) gives exactly that with two numpy arrays, which keeps
the greedy inner loop allocation-free and cache-friendly (see the HPC notes on
contiguous access).

Besides the :class:`CSRGraph` container this module provides constructors for
the structured graphs analyzed in Section III of the paper (paths, cycles,
cliques, stars) and conversion to/from :mod:`networkx` for prototyping and
cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class CSRGraph:
    """An undirected graph in compressed-sparse-row form.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the neighbors of vertex ``v`` are
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of length ``2 * |E|`` (each undirected edge is stored
        in both directions).
    """

    indptr: np.ndarray
    indices: np.ndarray

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of ``v`` as a contiguous array view."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices as an ``int64`` array."""
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        """Maximum degree :math:`\\Delta` of the graph (0 for empty graphs)."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        return bool(np.isin(v, self.neighbors(u)).item())

    def edges(self) -> np.ndarray:
        """All undirected edges as an ``(|E|, 2)`` array with ``u < v``."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on failure.

        Verifies monotone ``indptr``, in-range neighbor ids, symmetry, and the
        absence of self-loops.
        """
        n = self.num_vertices
        if n < 0:
            raise ValueError("indptr must have length >= 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (self.indices.min() < 0 or self.indices.max() >= n):
            raise ValueError("neighbor index out of range")
        src = np.repeat(np.arange(n, dtype=np.int64), self.degrees())
        if np.any(src == self.indices):
            raise ValueError("self-loops are not allowed")
        fwd = {(int(u), int(v)) for u, v in zip(src, self.indices)}
        for u, v in fwd:
            if (v, u) not in fwd:
                raise ValueError(f"edge ({u}, {v}) is not symmetric")


def from_edges(num_vertices: int, edges: Iterable[tuple[int, int]]) -> CSRGraph:
    """Build a :class:`CSRGraph` from an edge list.

    Duplicate edges and both orientations of the same edge are collapsed;
    self-loops are rejected.

    Parameters
    ----------
    num_vertices:
        Total vertex count (isolated vertices are allowed).
    edges:
        Iterable of ``(u, v)`` pairs.
    """
    pairs = set()
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            raise ValueError(f"self-loop on vertex {u}")
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ValueError(f"edge ({u}, {v}) out of range for n={num_vertices}")
        pairs.add((min(u, v), max(u, v)))
    if not pairs:
        return CSRGraph(
            indptr=np.zeros(num_vertices + 1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
        )
    arr = np.array(sorted(pairs), dtype=np.int64)
    src = np.concatenate([arr[:, 0], arr[:, 1]])
    dst = np.concatenate([arr[:, 1], arr[:, 0]])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRGraph(indptr=indptr, indices=dst)


def path_graph(n: int) -> CSRGraph:
    """Chain of ``n`` vertices ``0 - 1 - ... - (n-1)``."""
    if n < 1:
        raise ValueError("path graph needs at least one vertex")
    return from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> CSRGraph:
    """Cycle of ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("cycle graph needs at least three vertices")
    return from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def clique_graph(n: int) -> CSRGraph:
    """Complete graph :math:`K_n`."""
    if n < 1:
        raise ValueError("clique needs at least one vertex")
    return from_edges(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def star_graph(leaves: int) -> CSRGraph:
    """Star with center ``0`` and ``leaves`` leaves ``1..leaves``."""
    if leaves < 1:
        raise ValueError("star needs at least one leaf")
    return from_edges(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


def from_networkx(graph) -> tuple[CSRGraph, list]:
    """Convert a :class:`networkx.Graph` to CSR form.

    Returns
    -------
    (csr, nodes):
        The CSR graph plus the node list mapping CSR vertex id ``i`` back to
        the original networkx node ``nodes[i]``.
    """
    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in graph.edges()]
    return from_edges(len(nodes), edges), nodes


def to_networkx(csr: CSRGraph):
    """Convert a :class:`CSRGraph` to a :class:`networkx.Graph`."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(csr.num_vertices))
    graph.add_edges_from(map(tuple, csr.edges()))
    return graph


def is_bipartite(csr: CSRGraph) -> tuple[bool, np.ndarray]:
    """2-color the graph by BFS if possible.

    Returns
    -------
    (ok, side):
        ``ok`` is True iff the graph is bipartite; ``side`` assigns 0/1 to
        each vertex (valid only when ``ok``; isolated vertices get side 0).
    """
    n = csr.num_vertices
    side = np.full(n, -1, dtype=np.int8)
    for root in range(n):
        if side[root] != -1:
            continue
        side[root] = 0
        queue = [root]
        while queue:
            u = queue.pop()
            for v in csr.neighbors(u):
                v = int(v)
                if side[v] == -1:
                    side[v] = 1 - side[u]
                    queue.append(v)
                elif side[v] == side[u]:
                    return False, side
    return True, side
