"""The 9-pt 2D stencil graph (2DS-IVC substrate).

A 9-pt stencil on an ``X×Y`` grid connects ``(i, j)`` and ``(i', j')`` iff
``|i - i'| <= 1`` and ``|j - j'| <= 1`` (Moore neighborhood, Definition 2 of
the paper).  This module provides:

* flat row-major vertex indexing (``id = i * Y + j``),
* vectorized CSR adjacency for the 9-pt graph and its bipartite 5-pt
  (von Neumann) relaxation,
* the :math:`K_4` blocks of four mutually adjacent vertices
  ``(i, j), (i+1, j), (i, j+1), (i+1, j+1)`` that drive the max-clique lower
  bound and the clique-first heuristics,
* the row decomposition used by Bipartite Decomposition.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.stencil.generic import CSRGraph

#: Moore neighborhood offsets (8 neighbors).
OFFSETS_9PT = tuple(
    (di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1) if (di, dj) != (0, 0)
)
#: Von Neumann neighborhood offsets (4 neighbors).
OFFSETS_5PT = ((-1, 0), (1, 0), (0, -1), (0, 1))


class StencilGrid2D:
    """Geometry and adjacency of an ``X×Y`` 9-pt stencil.

    Parameters
    ----------
    X, Y:
        Grid dimensions; the paper assumes ``X > 1`` and ``Y > 1`` (a
        1-wide grid is a chain, handled by the exact special cases), but this
        class accepts any positive dimensions.
    """

    def __init__(self, X: int, Y: int) -> None:
        if X < 1 or Y < 1:
            raise ValueError("grid dimensions must be positive")
        self.X = int(X)
        self.Y = int(Y)

    # ------------------------------------------------------------------ shape
    @property
    def shape(self) -> tuple[int, int]:
        """The ``(X, Y)`` grid shape."""
        return (self.X, self.Y)

    @property
    def num_vertices(self) -> int:
        """Total vertex count ``X * Y``."""
        return self.X * self.Y

    def vertex_id(self, i, j):
        """Flat row-major id(s) of grid coordinate(s) ``(i, j)``."""
        return np.asarray(i, dtype=np.int64) * self.Y + np.asarray(j, dtype=np.int64)

    def coords(self, v):
        """Grid coordinate(s) ``(i, j)`` of flat id(s) ``v``."""
        v = np.asarray(v, dtype=np.int64)
        return v // self.Y, v % self.Y

    def in_bounds(self, i, j):
        """Vectorized bounds check."""
        i = np.asarray(i)
        j = np.asarray(j)
        return (i >= 0) & (i < self.X) & (j >= 0) & (j < self.Y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StencilGrid2D({self.X}, {self.Y})"

    def __eq__(self, other) -> bool:
        return isinstance(other, StencilGrid2D) and self.shape == other.shape

    def __hash__(self) -> int:
        return hash(("StencilGrid2D", self.shape))

    # -------------------------------------------------------------- adjacency
    def _build_csr(self, offsets) -> CSRGraph:
        X, Y = self.X, self.Y
        i, j = np.meshgrid(np.arange(X, dtype=np.int64), np.arange(Y, dtype=np.int64), indexing="ij")
        i = i.ravel()
        j = j.ravel()
        src_parts = []
        dst_parts = []
        for di, dj in offsets:
            ni, nj = i + di, j + dj
            mask = self.in_bounds(ni, nj)
            src_parts.append(self.vertex_id(i[mask], j[mask]))
            dst_parts.append(self.vertex_id(ni[mask], nj[mask]))
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(X * Y + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRGraph(indptr=indptr, indices=dst)

    @cached_property
    def csr(self) -> CSRGraph:
        """CSR adjacency of the full 9-pt stencil."""
        return self._build_csr(OFFSETS_9PT)

    @cached_property
    def csr_5pt(self) -> CSRGraph:
        """CSR adjacency of the bipartite 5-pt relaxation."""
        return self._build_csr(OFFSETS_5PT)

    def neighbors(self, i: int, j: int) -> list[tuple[int, int]]:
        """The in-bounds Moore neighbors of ``(i, j)`` as coordinate pairs."""
        out = []
        for di, dj in OFFSETS_9PT:
            ni, nj = i + di, j + dj
            if 0 <= ni < self.X and 0 <= nj < self.Y:
                out.append((ni, nj))
        return out

    # ----------------------------------------------------------------- blocks
    @cached_property
    def k4_blocks(self) -> np.ndarray:
        """All :math:`K_4` blocks as an ``((X-1)(Y-1), 4)`` array of ids.

        Block ``(i, j)`` (top-left corner) contains
        ``(i, j), (i, j+1), (i+1, j), (i+1, j+1)``; these four vertices are
        pairwise adjacent in the 9-pt stencil, so the sum of their weights is
        a lower bound on ``maxcolor*`` (Section III.A).
        """
        X, Y = self.X, self.Y
        if X < 2 or Y < 2:
            return np.empty((0, 4), dtype=np.int64)
        i, j = np.meshgrid(
            np.arange(X - 1, dtype=np.int64), np.arange(Y - 1, dtype=np.int64), indexing="ij"
        )
        i = i.ravel()
        j = j.ravel()
        return np.column_stack(
            [
                self.vertex_id(i, j),
                self.vertex_id(i, j + 1),
                self.vertex_id(i + 1, j),
                self.vertex_id(i + 1, j + 1),
            ]
        )

    def block_weight_sums(self, weights: np.ndarray) -> np.ndarray:
        """Sum of ``weights`` over each :math:`K_4` block (vectorized)."""
        weights = np.asarray(weights)
        if len(self.k4_blocks) == 0:
            return np.empty(0, dtype=weights.dtype)
        return weights[self.k4_blocks].sum(axis=1)

    # ------------------------------------------------------------------- rows
    def row_ids(self, j: int) -> np.ndarray:
        """Flat ids of row ``j`` — the chain ``(0, j), (1, j), ..., (X-1, j)``.

        Rows are the chains contracted by Bipartite Decomposition: within a
        row, consecutive vertices are adjacent; rows ``j`` and ``j + 1`` are
        adjacent, rows two apart are not.
        """
        if not 0 <= j < self.Y:
            raise IndexError(f"row {j} out of range for Y={self.Y}")
        return np.arange(self.X, dtype=np.int64) * self.Y + j

    def rows(self) -> list[np.ndarray]:
        """All rows, ``j = 0 .. Y-1``."""
        return [self.row_ids(j) for j in range(self.Y)]

    # -------------------------------------------------------------- orderings
    def line_by_line_order(self) -> np.ndarray:
        """Vertex permutation scanning rows one after the other.

        Within a row vertices are visited by increasing ``i``; rows by
        increasing ``j``.  (Any lexicographic scan realizes the paper's GLL;
        this one matches the row decomposition above.)
        """
        i, j = np.meshgrid(
            np.arange(self.X, dtype=np.int64), np.arange(self.Y, dtype=np.int64), indexing="ij"
        )
        return self.vertex_id(i.T.ravel(), j.T.ravel())

    def weights_as_grid(self, weights: np.ndarray) -> np.ndarray:
        """Reshape a flat weight vector to the ``(X, Y)`` grid."""
        return np.asarray(weights).reshape(self.X, self.Y)
