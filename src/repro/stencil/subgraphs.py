"""Enumeration of small embedded structures in conflict graphs.

The odd-cycle lower bound (Section III.C) needs the simple odd cycles
embedded in a stencil.  There are exponentially many cycles overall — the
paper notes that finding the best one is itself nontrivial — so, like the
analysis, we enumerate cycles up to a bounded length.

:func:`enumerate_simple_cycles` is a dependency-free DFS enumerator with the
classic canonical-form dedup (cycles are rooted at their minimum vertex and
oriented toward the smaller second vertex), used by
:func:`repro.core.bounds.odd_cycle_bound`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.stencil.generic import CSRGraph


def enumerate_simple_cycles(graph: CSRGraph, max_len: int) -> Iterator[list[int]]:
    """Yield every simple cycle with ``3 <= length <= max_len`` exactly once.

    Each cycle is rooted at its minimum vertex ``r`` and reported with
    ``cycle[1] < cycle[-1]``, so each undirected cycle appears in exactly one
    orientation.  DFS explores only vertices greater than the root, bounding
    work per root by ``Δ^(max_len-1)``.
    """
    if max_len < 3:
        return
    n = graph.num_vertices
    indptr, indices = graph.indptr, graph.indices
    on_path = np.zeros(n, dtype=bool)
    path: list[int] = []

    def dfs(root: int, v: int) -> Iterator[list[int]]:
        for u in indices[indptr[v] : indptr[v + 1]]:
            u = int(u)
            if u == root:
                if len(path) >= 3 and path[1] < path[-1]:
                    yield path.copy()
                continue
            if u < root or on_path[u] or len(path) >= max_len:
                continue
            on_path[u] = True
            path.append(u)
            yield from dfs(root, u)
            path.pop()
            on_path[u] = False

    for root in range(n):
        on_path[root] = True
        path.append(root)
        yield from dfs(root, root)
        path.pop()
        on_path[root] = False


def enumerate_odd_cycles(graph: CSRGraph, max_len: int) -> Iterator[list[int]]:
    """Yield the simple cycles of odd length up to ``max_len``."""
    for cycle in enumerate_simple_cycles(graph, max_len):
        if len(cycle) % 2 == 1:
            yield cycle


def count_cycles_by_length(graph: CSRGraph, max_len: int) -> dict[int, int]:
    """Histogram of simple-cycle lengths (used in tests and analysis)."""
    counts: dict[int, int] = {}
    for cycle in enumerate_simple_cycles(graph, max_len):
        counts[len(cycle)] = counts.get(len(cycle), 0) + 1
    return counts
