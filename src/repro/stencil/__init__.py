"""Stencil graph substrates.

This subpackage provides the graph machinery that the interval-coloring
algorithms operate on:

* :class:`~repro.stencil.grid2d.StencilGrid2D` — the 9-pt (Moore) 2D stencil
  used by 2DS-IVC, with its 5-pt (von Neumann) bipartite relaxation and its
  :math:`K_4` block structure.
* :class:`~repro.stencil.grid3d.StencilGrid3D` — the 27-pt 3D stencil used by
  3DS-IVC, with its 7-pt relaxation and :math:`K_8` blocks.
* :mod:`~repro.stencil.zorder` — Morton (Z-order) indexing used by the
  Greedy Z-Order heuristic.
* :mod:`~repro.stencil.generic` — CSR adjacency for arbitrary graphs (paths,
  cycles, cliques, bipartite graphs) and a bridge to :mod:`networkx`.

All adjacency is stored in CSR form (``indptr``/``indices`` numpy arrays) so
the coloring inner loops are gather-and-scan over contiguous memory.
"""

from repro.stencil.generic import (
    CSRGraph,
    clique_graph,
    cycle_graph,
    from_edges,
    from_networkx,
    path_graph,
    star_graph,
    to_networkx,
)
from repro.stencil.grid2d import StencilGrid2D
from repro.stencil.grid3d import StencilGrid3D
from repro.stencil.zorder import morton_argsort_2d, morton_argsort_3d, morton_key_2d, morton_key_3d

__all__ = [
    "CSRGraph",
    "StencilGrid2D",
    "StencilGrid3D",
    "clique_graph",
    "cycle_graph",
    "from_edges",
    "from_networkx",
    "morton_argsort_2d",
    "morton_argsort_3d",
    "morton_key_2d",
    "morton_key_3d",
    "path_graph",
    "star_graph",
    "to_networkx",
]
