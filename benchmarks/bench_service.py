"""Service benchmark — batched+cached serving vs the unbatched baseline.

The serving half of the online-service acceptance test.  Two server
configurations run the same repeated-shape workload (the interactive-STKDE
pattern: a handful of grid geometries re-requested over and over):

* **baseline** — micro-batching off (``max_batch=1``, zero batch window),
  result cache off, one sequential client connection: every request pays a
  full geometry lookup + kernel run + round trip on its own.
* **batched+cached** — micro-batching and the content-addressed cache on,
  concurrent connections: batches share the per-shape substrate, repeats hit
  the cache, identical in-flight requests coalesce.

Every served coloring in *both* runs is verified bit-for-bit against a
direct in-process ``color_with`` call, and the report embeds the treatment
server's metrics snapshot (cache hit rate, queue/batch histograms, latency
p50/p99).  The headline claim checked here and in CI: batched+cached
throughput ≥ 5× baseline.

Run standalone (writes the repo-root ``BENCH_service.json``)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--out PATH]

or through pytest-benchmark (writes ``benchmarks/out/BENCH_service.json``)::

    python -m pytest benchmarks/bench_service.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

from repro.service.loadgen import build_workload, run_loadgen
from repro.service.server import ServerConfig, ServerThread

#: The minimum batched+cached over baseline speedup the bench enforces.
MIN_SPEEDUP = 5.0


def _measure(
    config: ServerConfig,
    workload,
    *,
    requests: int,
    concurrency: int,
    seed: int,
) -> tuple[dict, dict]:
    """Run one server configuration; returns (loadgen report, metrics)."""
    with ServerThread(config) as server:
        report = run_loadgen(
            "127.0.0.1",
            server.port,
            workload,
            requests=requests,
            concurrency=concurrency,
            verify=True,
            seed=seed,
        )
    return report.to_json(), report.metrics


def run_service_benchmark(
    *,
    shapes=((48, 48), (32, 32)),
    distinct: int = 6,
    algorithm: str = "BDP",
    baseline_requests: int = 60,
    requests: int = 300,
    concurrency: int = 8,
    max_batch: int = 32,
    batch_window_ms: float = 2.0,
    cache_size: int = 512,
    seed: int = 0,
) -> dict:
    """The full ``BENCH_service.json`` document."""
    workload = build_workload(
        shapes, distinct=distinct, algorithm=algorithm, seed=seed
    )

    baseline_config = ServerConfig(
        port=0, max_batch=1, batch_window=0.0, cache_size=0, compute_threads=1
    )
    baseline, _ = _measure(
        baseline_config,
        workload,
        requests=baseline_requests,
        concurrency=1,
        seed=seed,
    )

    treatment_config = ServerConfig(
        port=0,
        max_batch=max_batch,
        batch_window=batch_window_ms / 1000.0,
        cache_size=cache_size,
        compute_threads=1,
    )
    treatment, metrics = _measure(
        treatment_config,
        workload,
        requests=requests,
        concurrency=concurrency,
        seed=seed + 1,
    )

    speedup = (
        treatment["throughput_rps"] / baseline["throughput_rps"]
        if baseline["throughput_rps"]
        else float("inf")
    )
    all_identical = (
        baseline["divergences"] == 0
        and treatment["divergences"] == 0
        and baseline["errors"] == 0
        and treatment["errors"] == 0
    )
    return {
        "meta": {
            "tool": "benchmarks/bench_service.py",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "workload": {
                "shapes": [list(s) for s in shapes],
                "distinct": distinct,
                "algorithm": algorithm,
                "seed": seed,
            },
            "baseline_config": {"max_batch": 1, "batch_window_ms": 0.0,
                                "cache_size": 0, "concurrency": 1},
            "treatment_config": {"max_batch": max_batch,
                                 "batch_window_ms": batch_window_ms,
                                 "cache_size": cache_size,
                                 "concurrency": concurrency},
        },
        "baseline": baseline,
        "batched_cached": treatment,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "metrics_snapshot": metrics,
        "all_identical": all_identical,
    }


def format_summary(report: dict) -> str:
    base = report["baseline"]
    treat = report["batched_cached"]
    status = "bit-identical" if report["all_identical"] else "DIVERGED"
    return (
        f"baseline (unbatched, uncached, serial): "
        f"{base['throughput_rps']:.1f} req/s, "
        f"p50 {base['latency_p50_ms']:.2f} ms\n"
        f"batched+cached ({treat['concurrency']} conns): "
        f"{treat['throughput_rps']:.1f} req/s, "
        f"p50 {treat['latency_p50_ms']:.2f} ms, "
        f"p99 {treat['latency_p99_ms']:.2f} ms, "
        f"hit rate {treat['cache_hit_rate'] * 100:.1f}%\n"
        f"speedup: {report['speedup']:.1f}x (floor {report['min_speedup']:.0f}x, "
        f"{status})"
    )


def _check(report: dict) -> list[str]:
    problems = []
    if not report["all_identical"]:
        problems.append("served colorings diverged from direct color_with")
    if report["speedup"] < report["min_speedup"]:
        problems.append(
            f"speedup {report['speedup']:.2f}x below the "
            f"{report['min_speedup']:.0f}x floor"
        )
    return problems


# ------------------------------------------------------------ pytest harness
def test_service_benchmark(benchmark):
    report = benchmark.pedantic(
        lambda: run_service_benchmark(
            shapes=((32, 32),), distinct=4, baseline_requests=40, requests=200
        ),
        rounds=1,
        iterations=1,
    )
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "BENCH_service.json").write_text(json.dumps(report, indent=2) + "\n")
    print("\n" + format_summary(report))
    assert not _check(report), _check(report)


# ----------------------------------------------------------------- standalone
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload (CI smoke)")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="JSON report path ('' skips the file)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.quick:
        report = run_service_benchmark(
            shapes=((32, 32),), distinct=4,
            baseline_requests=40, requests=200, seed=args.seed,
        )
    else:
        report = run_service_benchmark(seed=args.seed)

    print(format_summary(report))
    if args.out:
        path = Path(args.out)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {path}")
    problems = _check(report)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
