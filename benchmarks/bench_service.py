"""Service benchmark — batching, caching, and horizontal scaling.

The serving half of the online-service acceptance test, in two parts.

**Part 1 — batched+cached vs the unbatched baseline.**  Two server
configurations run the same repeated-shape workload (the interactive-STKDE
pattern: a handful of grid geometries re-requested over and over):

* **baseline** — micro-batching off (``max_batch=1``, zero batch window),
  result cache off, one sequential client connection: every request pays a
  full geometry lookup + kernel run + round trip on its own.
* **batched+cached** — micro-batching and the content-addressed cache on,
  concurrent connections: batches share the per-shape substrate, repeats hit
  the cache, identical in-flight requests coalesce.

Every served coloring in *both* runs is verified bit-for-bit against a
direct in-process ``color_with`` call, and the report embeds the treatment
server's metrics snapshot.  Headline claim: batched+cached throughput ≥ 5×
baseline.

**Part 2 — horizontal scaling.**  A mixed-shape zipf workload drives a
4-worker router (``stencil-ivc serve --workers 4`` equivalent) over the
binary wire with pipelined connections, swept across 8–64 concurrent
connections after a prewarm pass, next to a single-worker NDJSON run of
the same workload for the compat-path comparison.  A dedicated
``verify=True`` pass proves the routed, pipelined responses stay
bit-identical to direct colorings, and an overload point (~10× the
in-flight depth of the sweet spot) checks graceful degradation: zero
errors, zero lost requests, throughput holding ≥ half of the
same-concurrency sweep point.  Headline claim: peak cached throughput
≥ 5000 req/s.

Run standalone (writes the repo-root ``BENCH_service.json``)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--out PATH]

or through pytest-benchmark (writes ``BENCH_service.json`` under the
artifact root, ``out/benchmarks/``)::

    python -m pytest benchmarks/bench_service.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.service.loadgen import build_workload, run_loadgen
from repro.service.router import RouterConfig, RouterThread
from repro.service.server import ServerConfig, ServerThread

#: The minimum batched+cached over baseline speedup the bench enforces.
MIN_SPEEDUP = 5.0

#: The minimum peak cached throughput (req/s) the scaling section enforces
#: (full runs only; ``--quick`` records without enforcing).
MIN_SCALED_RPS = 5000.0


def _measure(
    config: ServerConfig,
    workload,
    *,
    requests: int,
    concurrency: int,
    seed: int,
) -> tuple[dict, dict]:
    """Run one server configuration; returns (loadgen report, metrics)."""
    with ServerThread(config) as server:
        report = run_loadgen(
            "127.0.0.1",
            server.port,
            workload,
            requests=requests,
            concurrency=concurrency,
            verify=True,
            seed=seed,
        )
    return report.to_json(), report.metrics


def run_service_benchmark(
    *,
    shapes=((48, 48), (32, 32)),
    distinct: int = 6,
    algorithm: str = "BDP",
    baseline_requests: int = 60,
    requests: int = 300,
    concurrency: int = 8,
    max_batch: int = 32,
    batch_window_ms: float = 2.0,
    cache_size: int = 512,
    seed: int = 0,
) -> dict:
    """The full ``BENCH_service.json`` document."""
    workload = build_workload(
        shapes, distinct=distinct, algorithm=algorithm, seed=seed
    )

    baseline_config = ServerConfig(
        port=0, max_batch=1, batch_window=0.0, cache_size=0, compute_threads=1
    )
    baseline, _ = _measure(
        baseline_config,
        workload,
        requests=baseline_requests,
        concurrency=1,
        seed=seed,
    )

    treatment_config = ServerConfig(
        port=0,
        max_batch=max_batch,
        batch_window=batch_window_ms / 1000.0,
        cache_size=cache_size,
        compute_threads=1,
    )
    treatment, metrics = _measure(
        treatment_config,
        workload,
        requests=requests,
        concurrency=concurrency,
        seed=seed + 1,
    )

    speedup = (
        treatment["throughput_rps"] / baseline["throughput_rps"]
        if baseline["throughput_rps"]
        else float("inf")
    )
    all_identical = (
        baseline["divergences"] == 0
        and treatment["divergences"] == 0
        and baseline["errors"] == 0
        and treatment["errors"] == 0
    )
    return {
        "meta": {
            "tool": "benchmarks/bench_service.py",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "workload": {
                "shapes": [list(s) for s in shapes],
                "distinct": distinct,
                "algorithm": algorithm,
                "seed": seed,
            },
            "baseline_config": {"max_batch": 1, "batch_window_ms": 0.0,
                                "cache_size": 0, "concurrency": 1},
            "treatment_config": {"max_batch": max_batch,
                                 "batch_window_ms": batch_window_ms,
                                 "cache_size": cache_size,
                                 "concurrency": concurrency},
        },
        "baseline": baseline,
        "batched_cached": treatment,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "metrics_snapshot": metrics,
        "all_identical": all_identical,
    }


def run_scaling_benchmark(
    *,
    shapes=((48, 48), (32, 32)),
    distinct: int = 8,
    algorithm: str = "BDP",
    workers: int = 4,
    zipf: float = 1.1,
    pipeline: int = 8,
    concurrency_sweep=(8, 16, 32, 64),
    requests: int = 8000,
    ndjson_requests: int = 2000,
    verify_requests: int = 1000,
    seed: int = 0,
    enforce: bool = True,
) -> dict:
    """The ``scaling`` section of ``BENCH_service.json``.

    The sweep itself runs ``verify=False`` so the (single-core) client
    measures serving capacity, not its own ``array_equal`` loop; the
    dedicated verify pass — routed, pipelined, zipf-skewed like the sweep
    — is what proves bit-identity.
    """
    workload = build_workload(
        shapes, distinct=distinct, algorithm=algorithm, seed=seed
    )
    worker_config = ServerConfig(
        port=0, max_batch=32, batch_window=0.002, queue_limit=256,
        cache_size=512, compute_threads=1,
    )

    # --- binary wire through an N-worker router --------------------------
    router_config = RouterConfig(
        port=0, workers=workers, worker_config=worker_config
    )
    with RouterThread(router_config) as router:
        # Prewarm: every pool item computed once on its rendezvous owner,
        # so the measured phases below are pure cached traffic.
        prewarm = run_loadgen(
            "127.0.0.1", router.port, workload,
            requests=4 * distinct, concurrency=4, seed=seed,
            wire="binary", fetch_metrics=False,
        )
        sweep = []
        for concurrency in concurrency_sweep:
            time.sleep(1.0)  # settle between phases (scheduler fairness)
            point = run_loadgen(
                "127.0.0.1", router.port, workload,
                requests=requests, concurrency=concurrency,
                seed=seed + 2 + concurrency, zipf=zipf,
                wire="binary", pipeline=pipeline, fetch_metrics=False,
            )
            sweep.append(point.to_json())
        # Overload: ~10x the in-flight depth of the lightest sweep point.
        time.sleep(1.0)
        overload = run_loadgen(
            "127.0.0.1", router.port, workload,
            requests=requests, concurrency=max(concurrency_sweep),
            seed=seed + 99, zipf=zipf, wire="binary",
            pipeline=10 * pipeline, fetch_metrics=False,
        ).to_json()
        # The equivalence pass runs after the sweep so its client-side
        # array comparisons don't contend with the capacity measurement.
        verified = run_loadgen(
            "127.0.0.1", router.port, workload,
            requests=verify_requests, concurrency=8, verify=True,
            seed=seed + 1, zipf=zipf, wire="binary", pipeline=pipeline,
            fetch_metrics=False,
        )

    # --- NDJSON compat path, single worker -------------------------------
    with ServerThread(worker_config) as server:
        run_loadgen(  # prewarm
            "127.0.0.1", server.port, workload,
            requests=4 * distinct, concurrency=4, seed=seed,
            wire="ndjson", fetch_metrics=False,
        )
        ndjson = run_loadgen(
            "127.0.0.1", server.port, workload,
            requests=ndjson_requests, concurrency=8, seed=seed + 3,
            zipf=zipf, wire="ndjson", fetch_metrics=False,
        ).to_json()

    peak = max(point["throughput_rps"] for point in sweep)
    # Graceful = nothing lost and throughput holding ≥ half of the
    # *same-concurrency* sweep point (peak is measured earlier, on a
    # fresher machine state, and would overstate the collapse).
    reference = sweep[-1]["throughput_rps"]
    graceful = (
        overload["errors"] == 0
        and overload["connection_failures"] == 0
        and overload["throughput_rps"] >= 0.5 * reference
    )
    return {
        "config": {
            "workers": workers,
            "wire": "binary",
            "zipf": zipf,
            "pipeline": pipeline,
            "shapes": [list(s) for s in shapes],
            "distinct": distinct,
            "algorithm": algorithm,
            "requests_per_point": requests,
            "seed": seed,
        },
        "prewarm_computed": prewarm.computed,
        "verified": verified.to_json(),
        "sweep": sweep,
        "peak_rps": peak,
        "min_rps": MIN_SCALED_RPS,
        "enforced": enforce,
        "overload": overload,
        "graceful_degradation": graceful,
        "ndjson_single_worker": ndjson,
    }


def format_summary(report: dict) -> str:
    base = report["baseline"]
    treat = report["batched_cached"]
    status = "bit-identical" if report["all_identical"] else "DIVERGED"
    lines = [
        f"baseline (unbatched, uncached, serial): "
        f"{base['throughput_rps']:.1f} req/s, "
        f"p50 {base['latency_p50_ms']:.2f} ms",
        f"batched+cached ({treat['concurrency']} conns): "
        f"{treat['throughput_rps']:.1f} req/s, "
        f"p50 {treat['latency_p50_ms']:.2f} ms, "
        f"p99 {treat['latency_p99_ms']:.2f} ms, "
        f"hit rate {treat['cache_hit_rate'] * 100:.1f}%",
        f"speedup: {report['speedup']:.1f}x (floor {report['min_speedup']:.0f}x, "
        f"{status})",
    ]
    scaling = report.get("scaling")
    if scaling:
        cfg = scaling["config"]
        verified = scaling["verified"]
        verdict = (
            "bit-identical" if verified["divergences"] == 0 else "DIVERGED"
        )
        lines.append(
            f"scaling ({cfg['workers']} workers, binary, zipf "
            f"s={cfg['zipf']:g}, pipeline {cfg['pipeline']}):"
        )
        for point in scaling["sweep"]:
            lines.append(
                f"  conc {point['concurrency']:>3}: "
                f"{point['throughput_rps']:.0f} req/s, "
                f"hit rate {point['cache_hit_rate'] * 100:.1f}%, "
                f"p50 {point['latency_p50_ms']:.1f} ms"
            )
        overload = scaling["overload"]
        degrade = "graceful" if scaling["graceful_degradation"] else "COLLAPSED"
        lines.append(
            f"  peak {scaling['peak_rps']:.0f} req/s "
            f"(floor {scaling['min_rps']:.0f}"
            f"{'' if scaling['enforced'] else ', not enforced'}); "
            f"verify pass {verdict}"
        )
        lines.append(
            f"  overload x10 in-flight: {overload['throughput_rps']:.0f} req/s, "
            f"{overload['errors']} errors, "
            f"{overload['overloaded_retries']} overload retries ({degrade})"
        )
        ndjson = scaling["ndjson_single_worker"]
        lines.append(
            f"  ndjson 1 worker: {ndjson['throughput_rps']:.0f} req/s "
            f"(compat path)"
        )
    return "\n".join(lines)


def _check(report: dict) -> list[str]:
    problems = []
    if not report["all_identical"]:
        problems.append("served colorings diverged from direct color_with")
    if report["speedup"] < report["min_speedup"]:
        problems.append(
            f"speedup {report['speedup']:.2f}x below the "
            f"{report['min_speedup']:.0f}x floor"
        )
    scaling = report.get("scaling")
    if scaling:
        verified = scaling["verified"]
        if verified["divergences"] or verified["errors"]:
            problems.append("scaled serving diverged from direct color_with")
        if not scaling["graceful_degradation"]:
            problems.append("overload did not degrade gracefully")
        if scaling["enforced"] and scaling["peak_rps"] < scaling["min_rps"]:
            problems.append(
                f"peak scaled throughput {scaling['peak_rps']:.0f} req/s "
                f"below the {scaling['min_rps']:.0f} req/s floor"
            )
    return problems


# ------------------------------------------------------------ pytest harness
def _full_report(*, quick: bool, seed: int = 0) -> dict:
    if quick:
        report = run_service_benchmark(
            shapes=((32, 32),), distinct=4,
            baseline_requests=40, requests=200, seed=seed,
        )
        report["scaling"] = run_scaling_benchmark(
            shapes=((32, 32),), distinct=4, workers=2,
            concurrency_sweep=(8, 16), requests=1200,
            ndjson_requests=400, verify_requests=200,
            seed=seed, enforce=False,
        )
    else:
        # Scaling first: the capacity sweep gets the freshest CPU (shared
        # runners throttle sustained load, and part 1 is not rate-sensitive
        # in the same way — its claim is a ratio, not an absolute).
        scaling = run_scaling_benchmark(seed=seed)
        report = run_service_benchmark(seed=seed)
        report["scaling"] = scaling
    return report


def test_service_benchmark(benchmark):
    report = benchmark.pedantic(
        lambda: _full_report(quick=True),
        rounds=1,
        iterations=1,
    )
    from benchmarks.conftest import out_dir

    d = out_dir()
    d.mkdir(parents=True, exist_ok=True)
    (d / "BENCH_service.json").write_text(json.dumps(report, indent=2) + "\n")
    print("\n" + format_summary(report))
    assert not _check(report), _check(report)


# ----------------------------------------------------------------- standalone
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload (CI smoke)")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="JSON report path ('' skips the file)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    report = _full_report(quick=args.quick, seed=args.seed)

    print(format_summary(report))
    if args.out:
        path = Path(args.out)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {path}")
    problems = _check(report)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
