"""Shared infrastructure for the figure-regeneration benchmarks.

Every file in this directory regenerates one table/figure of the paper (see
DESIGN.md §4).  Conventions:

* Suites are built once per session (fixtures below) and shared across
  benches; sizes scale with ``REPRO_BENCH_SCALE`` (default 1.0) and the
  dimension caps with ``REPRO_BENCH_DIM_CAP_{2D,3D}``.
* Quality tables are emitted straight to the terminal (bypassing pytest's
  capture, so ``pytest benchmarks/ --benchmark-only | tee`` records them)
  and also written under ``benchmarks/out/``.
* pytest-benchmark times the algorithm kernels themselves, which is the
  runtime-comparison half of Figures 5a/7a.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.data.instances import SuiteConfig, build_suite_2d, build_suite_3d
from repro.data.synthetic import standard_datasets
from repro.experiments import run_suite
from repro.runtime.config import env_float, env_int

OUT_DIR = Path(__file__).parent / "out"

BENCH_SCALE = env_float("REPRO_BENCH_SCALE", 1.0)
DIM_CAP_2D = env_int("REPRO_BENCH_DIM_CAP_2D", 16)
DIM_CAP_3D = env_int("REPRO_BENCH_DIM_CAP_3D", 8)
# Engine worker processes for the suite fixtures.  Default 1 (serial, same
# code path) so per-cell timings stay uncontended; set 0 to use all cores.
BENCH_JOBS = env_int("REPRO_BENCH_JOBS", 1)


def _slug(title: str) -> str:
    return title.lower().replace(" ", "_").replace("/", "-")


def emit(title: str, body: str) -> None:
    """Print a report block and save it to out/.

    Under pytest's default fd-level capture the printed block is swallowed
    for passing tests (run with ``-s`` to stream reports live); the
    authoritative copies always land in ``benchmarks/out/*.txt``.
    """
    text = f"\n=== {title} ===\n{body}\n"
    sys.__stdout__.write(text)
    sys.__stdout__.flush()
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{_slug(title)}.txt").write_text(body + "\n")


def emit_svg(title: str, svg: str) -> None:
    """Save a rendered SVG figure to out/ (the graphical half of a figure)."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{_slug(title)}.svg"
    path.write_text(svg)
    sys.__stdout__.write(f"[figure saved: {path}]\n")
    sys.__stdout__.flush()


@pytest.fixture(scope="session")
def datasets():
    """The four synthetic datasets at benchmark scale."""
    return standard_datasets(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def suite2d(datasets):
    """The 2DS-IVC instance suite (Section VI.A construction)."""
    return build_suite_2d(datasets, SuiteConfig(dim_cap=DIM_CAP_2D, max_cells=1024))


@pytest.fixture(scope="session")
def suite3d(datasets):
    """The 3DS-IVC instance suite."""
    return build_suite_3d(datasets, SuiteConfig(dim_cap=DIM_CAP_3D, max_cells=1024))


@pytest.fixture(scope="session")
def result2d(suite2d):
    """All seven algorithms run over the 2D suite (shared by figs 5, 6, 9)."""
    return run_suite(suite2d, jobs=BENCH_JOBS)


@pytest.fixture(scope="session")
def result3d(suite3d):
    """All seven algorithms run over the 3D suite (shared by figs 7, 8, 9)."""
    return run_suite(suite3d, jobs=BENCH_JOBS)
