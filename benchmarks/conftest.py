"""Shared infrastructure for the figure-regeneration benchmarks.

Every file in this directory regenerates one table/figure of the paper (see
DESIGN.md §4).  The figure benches are thin runners over the committed
campaign specs in ``campaigns/``: each one executes (or resume-adopts) its
spec through :mod:`repro.campaign` and emits the rendered report docs, so
``pytest benchmarks/`` and ``stencil-ivc campaign run/harvest/report``
produce byte-identical tables from the same artifact directory.

Conventions:

* Campaign runs land under ``<out>/benchmarks/plans/<plan-fingerprint>/``
  — figure specs that share a plan (fig5/fig6/fig9a all ride the 2D base
  suite) share one run.  ``<out>`` defaults to the repo-wide artifact root
  (``out/``, override with ``--repro-out`` or ``REPRO_OUT_DIR``).
* Emitted tables/figures land under ``<out>/benchmarks/`` and are streamed
  to the terminal (bypassing pytest's capture, so
  ``pytest benchmarks/ --benchmark-only | tee`` records them).
* Suite sizes scale with ``REPRO_BENCH_SCALE`` (default 1.0) and the
  dimension caps with ``REPRO_BENCH_DIM_CAP_{2D,3D}``; the overrides are
  applied to the spec's scenario, so a scaled run gets its own plan
  fingerprint (and artifact dir) instead of clobbering the default one.
* pytest-benchmark times the algorithm kernels themselves, which is the
  runtime-comparison half of Figures 5a/7a.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    ReportDoc,
    artifact_root,
    bench_dir,
    harvest_campaign,
    load_spec,
    render_reports,
    run_campaign,
    slug as _slug,
)
from repro.data.instances import SuiteConfig, build_suite_2d, build_suite_3d
from repro.data.synthetic import standard_datasets
from repro.runtime.config import env_float, env_int

CAMPAIGNS_DIR = Path(__file__).resolve().parent.parent / "campaigns"

BENCH_SCALE = env_float("REPRO_BENCH_SCALE", 1.0)
DIM_CAP_2D = env_int("REPRO_BENCH_DIM_CAP_2D", 16)
DIM_CAP_3D = env_int("REPRO_BENCH_DIM_CAP_3D", 8)
# Engine worker processes for the campaign runs.  Default 1 (serial, same
# code path) so per-cell timings stay uncontended; set 0 to use all cores.
BENCH_JOBS = env_int("REPRO_BENCH_JOBS", 1)

#: Artifact root for this session; ``--repro-out`` rebinds it in
#: :func:`pytest_configure`.
OUT_ROOT = artifact_root(None)

#: plan fingerprint -> harvest document, so figure benches sharing a plan
#: run the suite once per session.
_HARVESTS: dict[str, dict] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--repro-out",
        default=None,
        help="artifact root for benchmark outputs (default: REPRO_OUT_DIR or ./out)",
    )


def pytest_configure(config):
    global OUT_ROOT
    OUT_ROOT = artifact_root(config.getoption("--repro-out", default=None))


def out_dir() -> Path:
    """Directory for emitted tables/figures (``<artifact root>/benchmarks``)."""
    return bench_dir(OUT_ROOT)


def emit(title: str, body: str) -> None:
    """Print a report block and save it under the artifact root.

    Under pytest's default fd-level capture the printed block is swallowed
    for passing tests (run with ``-s`` to stream reports live); the
    authoritative copies always land in ``<out>/benchmarks/*.txt``.
    """
    text = f"\n=== {title} ===\n{body}\n"
    sys.__stdout__.write(text)
    sys.__stdout__.flush()
    d = out_dir()
    d.mkdir(parents=True, exist_ok=True)
    (d / f"{_slug(title)}.txt").write_text(body + "\n")


def emit_svg(title: str, svg: str) -> None:
    """Save a rendered SVG figure (the graphical half of a figure)."""
    _write_svg(_slug(title), svg)


def _write_svg(file_slug: str, svg: str) -> None:
    d = out_dir()
    d.mkdir(parents=True, exist_ok=True)
    path = d / f"{file_slug}.svg"
    path.write_text(svg)
    sys.__stdout__.write(f"[figure saved: {path}]\n")
    sys.__stdout__.flush()


def emit_doc(doc: ReportDoc) -> None:
    """Emit a rendered campaign report doc: table to txt, figures to svg."""
    emit(doc.title, doc.body)
    for file_slug, svg in doc.svgs:
        _write_svg(file_slug, svg)


def bench_spec(name: str) -> CampaignSpec:
    """Load a committed spec, applying the benchmark-scale env knobs.

    Only the suite scenarios take the knobs; overriding with the default
    values is a no-op on the plan fingerprint, so default-knob benches and
    a plain ``stencil-ivc campaign run`` compile the identical plan.
    """
    spec = load_spec(CAMPAIGNS_DIR / name)
    kind = spec.scenario.get("kind")
    if kind == "suite2d":
        spec = spec.with_scenario(scale=BENCH_SCALE, dim_cap=DIM_CAP_2D)
    elif kind == "suite3d":
        spec = spec.with_scenario(scale=BENCH_SCALE, dim_cap=DIM_CAP_3D)
    return spec


def bench_campaign(spec_name: str) -> dict:
    """Run (or resume-adopt) a spec's campaign and return its harvest.

    The artifact dir is keyed by plan fingerprint, so re-runs adopt every
    completed cell from disk and figure specs sharing a plan share one run.
    """
    spec = bench_spec(spec_name)
    fp = spec.plan_fingerprint()
    if fp in _HARVESTS:
        return _HARVESTS[fp]
    run_dir = OUT_ROOT / "benchmarks" / "plans" / fp[:16]
    resume = (run_dir / "runs.jsonl").is_file()
    run_campaign(spec, out_dir=run_dir, jobs=BENCH_JOBS, resume=resume)
    harvest = harvest_campaign(run_dir)
    _HARVESTS[fp] = harvest
    return harvest


def campaign_docs(spec_name: str) -> list[ReportDoc]:
    """Render a spec's reports from its (possibly shared) campaign harvest."""
    return render_reports(bench_campaign(spec_name), bench_spec(spec_name).reports)


@pytest.fixture(scope="session")
def datasets():
    """The four synthetic datasets at benchmark scale."""
    return standard_datasets(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def suite2d(datasets):
    """The 2DS-IVC instance suite (Section VI.A construction)."""
    return build_suite_2d(datasets, SuiteConfig(dim_cap=DIM_CAP_2D, max_cells=1024))


@pytest.fixture(scope="session")
def suite3d(datasets):
    """The 3DS-IVC instance suite."""
    return build_suite_3d(datasets, SuiteConfig(dim_cap=DIM_CAP_3D, max_cells=1024))


@pytest.fixture(scope="session")
def harvest2d():
    """Harvest of the shared 2D base campaign (figs 5, 6, 9a ride it)."""
    return bench_campaign("_base_2d.toml")


@pytest.fixture(scope="session")
def harvest3d():
    """Harvest of the shared 3D base campaign (figs 7, 8, 9b ride it)."""
    return bench_campaign("_base_3d.toml")
