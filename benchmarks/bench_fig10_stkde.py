"""Figure 10 — STKDE integration: colors vs (simulated) runtime (§VII).

Six dataset/bandwidth/box-grid configurations, mirroring the paper's six
slowest STKDE configs on a 6-worker machine.  For each configuration every
coloring algorithm's task DAG is replayed on the discrete-event runtime
simulator; the emitted scatter lists (algorithm, maxcolor, makespan) plus a
linear fit.

The regression is reported twice: over the (near-)first-fit colorings (GLL,
GZO, GLF, GKF, SGK, BDP — for which maxcolor tracks the DAG's weighted
critical path, the mechanism the paper identifies) and over all seven.  Raw
BD's maxcolor deliberately over-counts (BD is a bound construction; the
paper notes BD and BDP induce the same task graph), so it enters the
scatter as a labeled outlier exactly like in the paper's discussion.
"""

import pytest

from repro.reports import stkde_figure
from repro.stkde.tasks import STKDEProblem

from benchmarks.conftest import emit, emit_svg

#: (dataset, box grid) per configuration; bandwidths derived from the grid.
CONFIGS = [
    ("Dengue", (12, 10, 16)),
    ("Dengue", (6, 5, 8)),
    ("FluAnimal", (16, 6, 32)),
    ("FluAnimal", (8, 3, 16)),
    ("Pollen", (24, 8, 16)),
    ("PollenUS", (16, 7, 16)),
]
WORKERS = 6


def _problem(datasets, name: str, box_dims):
    ds = {d.name: d for d in datasets}[name]
    h_space = min(
        ds.axis_length(0) / (2 * box_dims[0]), ds.axis_length(1) / (2 * box_dims[1])
    )
    h_time = ds.axis_length(2) / (2 * box_dims[2])
    return STKDEProblem(ds, (8, 8, 8), h_space, h_time, tuple(box_dims))


@pytest.mark.parametrize("name,box_dims", CONFIGS)
def test_fig10_config(benchmark, datasets, name, box_dims):
    problem = _problem(datasets, name, box_dims)
    instance = problem.instance

    def run_config():
        return stkde_figure(instance, workers=WORKERS)

    figure = benchmark.pedantic(run_config, rounds=1, iterations=1)
    label = f"fig10 stkde {name} {'x'.join(map(str, box_dims))}"
    emit(label, figure.to_text())

    from repro.analysis.svgplot import scatter_svg

    emit_svg(
        label,
        scatter_svg(
            [r.maxcolor for r in figure.rows],
            [r.makespan for r in figure.rows],
            [r.algorithm for r in figure.rows],
            fit=figure.fit_first_fit,
            title=f"Fig 10 — {name} {box_dims}, P={WORKERS}",
        ),
    )
    # The paper's claim: positive linear correlation in every config (weak
    # in the work-bound ones) — asserted for the first-fit family.
    assert figure.fit_first_fit.rvalue > -0.2
