"""Ablation — uniform vs load-balanced rectilinear decomposition.

The paper's Figure 1 setting cites Nicol's rectilinear partitioning; the
evaluation uses uniform grids.  This bench quantifies what load-balanced
cut positions (same part counts, same stencil conflict graph) buy: a lower
clique lower bound and correspondingly fewer colors for the best heuristics.
"""

from repro.analysis.reporting import format_table
from repro.core.algorithms.registry import color_with
from repro.core.bounds import clique_block_bound
from repro.data.partition import (
    balanced_rectilinear_instance,
    uniform_rectilinear_instance,
)

from benchmarks.conftest import emit

PARTS = (8, 6)
ALGS = ("GLF", "SGK", "BDP")


def test_ablation_partition(benchmark, datasets):
    def run():
        rows = []
        for dataset in datasets:
            bw = min(
                dataset.axis_length(0) / (2 * PARTS[0] + 2),
                dataset.axis_length(1) / (2 * PARTS[1] + 2),
            )
            uniform = uniform_rectilinear_instance(dataset, axes=(0, 1), parts=PARTS)
            balanced = balanced_rectilinear_instance(
                dataset, axes=(0, 1), parts=PARTS, bandwidths=(bw, bw)
            )
            for label, inst in (("uniform", uniform), ("balanced", balanced)):
                colors = {a: color_with(inst, a).maxcolor for a in ALGS}
                rows.append(
                    (
                        dataset.name,
                        label,
                        clique_block_bound(inst),
                        *[colors[a] for a in ALGS],
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = format_table(
        ("dataset", "partition", "clique LB", *ALGS), rows
    ) + (
        "\n\nsame part counts and conflict graph; balanced cuts equalize the"
        " per-region loads, lowering the clique bound and the best colorings."
    )
    emit("ablation partition", body)
    # Balanced never increases the clique bound.
    by_ds = {}
    for name, label, lb, *_ in rows:
        by_ds.setdefault(name, {})[label] = lb
    for name, lbs in by_ds.items():
        assert lbs["balanced"] <= lbs["uniform"], name