"""Kernel microbenchmark — vectorized fast paths vs the reference loops.

The perf half of the kernels subsystem's acceptance test: run each fast-path
algorithm through both code paths on the same random grids, assert the
colorings are *identical* (same starts, not just the same maxcolor), and
emit the speedup table plus ``BENCH_kernels.json`` under the artifact root
(``out/benchmarks/``, see ``conftest.out_dir``).  Sizes
here are deliberately small so the bench doubles as a CI smoke step; the
committed repo-root ``BENCH_kernels.json`` holds the full-size sweep
(``stencil-ivc bench-kernels``).
"""

import json

from repro.kernels.bench import (
    DEFAULT_ALGORITHMS,
    format_report,
    run_kernel_benchmark,
    summary_line,
)

from benchmarks.conftest import emit, out_dir

SIZES_2D = (32, 64)
SIZES_3D = (8, 12)


def test_kernels_vs_reference(benchmark):
    report = benchmark.pedantic(
        lambda: run_kernel_benchmark(
            sizes_2d=SIZES_2D,
            sizes_3d=SIZES_3D,
            algorithms=DEFAULT_ALGORITHMS,
            reps=2,
        ),
        rounds=1,
        iterations=1,
    )
    emit("kernel speedups", format_report(report) + "\n\n" + summary_line(report))
    d = out_dir()
    d.mkdir(parents=True, exist_ok=True)
    (d / "BENCH_kernels.json").write_text(json.dumps(report, indent=2) + "\n")
    # The hard guarantee: every kernel coloring is bit-identical to the
    # reference — a speedup that changes results is a bug, not a feature.
    assert report["all_identical"], [
        r for r in report["results"] if not r["identical"]
    ]
