"""Figures 9a/9b — performance profiles against MILP-proven optima (§VI.D).

The paper solved instances with Gurobi (1 day each); here scipy's HiGHS
gets a few seconds per instance, and — exactly like the paper — the
unsolved minority is excluded.  Also regenerates the §VI.D statistic that
the max-clique lower bound equals the optimum on the vast majority of
solved instances.
"""

import pytest

from repro.analysis.performance_profiles import profile_to_text
from repro.analysis.stats import fraction_matching
from repro.experiments import SuiteResult, solve_suite_optimal

from benchmarks.conftest import emit, emit_svg

#: Per-instance HiGHS budget (the paper gave Gurobi 86400s).
TIME_LIMIT = 5.0
#: Cap on instance size for the MILP pass, keeping the bench laptop-sized.
MAX_CELLS_2D = 144
MAX_CELLS_3D = 80


def _restrict(result: SuiteResult, max_cells: int) -> SuiteResult:
    keep = [
        i
        for i, inst in enumerate(result.instances)
        if inst.num_vertices <= max_cells
    ]
    return result.subset(keep)


def _report(result: SuiteResult, label: str) -> tuple[str, object]:
    solved, optima = solve_suite_optimal(result, time_limit=TIME_LIMIT)
    sub = result.subset(solved)
    profile = sub.profile(best=[float(v) for v in optima])
    lines = [
        f"{label}: MILP solved {len(solved)}/{result.num_instances} instances "
        f"within {TIME_LIMIT}s each (paper: 97.5% 2D / 83.1% 3D in a day)",
        "",
        profile_to_text(profile),
    ]
    lb_match = fraction_matching(
        [float(v) for v in optima], [float(b) for b in sub.lower_bounds]
    )
    lines += [
        "",
        f"max-clique bound == optimum on {lb_match * 100:.1f}% of solved "
        "instances (paper: ~95.7% 2D / ~97.4% 3D)",
    ]
    return "\n".join(lines), profile


def test_fig9a_2d_vs_optimal(benchmark, result2d):
    from repro.analysis.svgplot import profile_svg

    small = _restrict(result2d, MAX_CELLS_2D)

    def report():
        return _report(small, "2D")

    body, profile = benchmark.pedantic(report, rounds=1, iterations=1)
    emit("fig9a 2d vs optimal", body)
    emit_svg(
        "fig9a 2d vs optimal",
        profile_svg(profile, title="Fig 9a — 2D profile vs MILP optimum"),
    )


def test_fig9b_3d_vs_optimal(benchmark, result3d):
    from repro.analysis.svgplot import profile_svg

    small = _restrict(result3d, MAX_CELLS_3D)

    def report():
        return _report(small, "3D")

    body, profile = benchmark.pedantic(report, rounds=1, iterations=1)
    emit("fig9b 3d vs optimal", body)
    emit_svg(
        "fig9b 3d vs optimal",
        profile_svg(profile, title="Fig 9b — 3D profile vs MILP optimum"),
    )
