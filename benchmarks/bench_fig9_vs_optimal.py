"""Figures 9a/9b — performance profiles against MILP-proven optima (§VI.D).

The paper solved instances with Gurobi (1 day each); here scipy's HiGHS
gets a few seconds per instance, and — exactly like the paper — the
unsolved minority is excluded.  Also regenerates the §VI.D statistic that
the max-clique lower bound equals the optimum on the vast majority of
solved instances.

The heuristic colorings come from the shared base campaign runs
(``campaigns/fig9a.toml`` / ``fig9b.toml``); the MILP pass happens at
report time against instances rebuilt from the spec embedded in the
harvest, capped at ``max_cells`` to keep the bench laptop-sized.
"""

from benchmarks.conftest import campaign_docs, emit_doc


def test_fig9a_2d_vs_optimal(benchmark):
    docs = benchmark.pedantic(
        lambda: campaign_docs("fig9a.toml"), rounds=1, iterations=1
    )
    for doc in docs:
        emit_doc(doc)


def test_fig9b_3d_vs_optimal(benchmark):
    docs = benchmark.pedantic(
        lambda: campaign_docs("fig9b.toml"), rounds=1, iterations=1
    )
    for doc in docs:
        emit_doc(doc)
