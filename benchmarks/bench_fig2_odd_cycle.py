"""Figure 2 — an odd cycle whose optimum beats the max-clique bound.

Regenerates the certified numbers: clique bound 25, odd-cycle bound
(Theorem 1) 30, exact optimum 30; and times the exact solver on the
instance.
"""

from repro.analysis.reporting import format_table
from repro.core.bounds import clique_block_bound, odd_cycle_bound
from repro.core.exact.branch_and_bound import solve_exact
from repro.core.exact.special_cases import color_odd_cycle
from repro.data.paper_instances import (
    FIGURE2_WEIGHTS,
    figure2_cycle_graph,
    figure2_odd_cycle,
)

from benchmarks.conftest import emit


def test_fig2_bounds_and_optimum(benchmark):
    instance = figure2_odd_cycle()

    def solve():
        return solve_exact(instance)

    optimum = benchmark(solve)
    clique = clique_block_bound(instance)
    cycle = odd_cycle_bound(instance, max_len=7)
    constructed = color_odd_cycle(figure2_cycle_graph()).check()
    rows = [
        ("cycle weights", str(list(FIGURE2_WEIGHTS))),
        ("max-clique (K4) bound", clique),
        ("odd-cycle bound (Thm 1)", cycle),
        ("Lemma 2 construction", constructed.maxcolor),
        ("exact optimum (B&B)", optimum.maxcolor),
        ("paper values", "clique 25, optimum 30"),
    ]
    emit("fig2 odd cycle", format_table(("quantity", "value"), rows))
    assert clique == 25
    assert cycle == optimum.maxcolor == constructed.maxcolor == 30
