"""Figures 7a/7b — 3D results over all instances, plus the §VI.C statistics.

The paper's 3D findings: GLF and SGK lead on quality, GLF is much faster,
SGK is the slowest, and BDP loses the dominance it had in 2D.
"""

import numpy as np
import pytest

from repro.analysis.stats import relative_slowdown, runtime_summary
from repro.core.algorithms.registry import ALGORITHMS
from repro.reports import suite_quality_report, suite_runtime_report

from benchmarks.conftest import emit, emit_svg


@pytest.fixture(scope="module")
def sample3d(suite3d):
    mid = [i for i in suite3d if 64 <= i.num_vertices <= 512]
    return (mid or suite3d)[:15]


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig7a_runtime(benchmark, sample3d, algorithm):
    fn = ALGORITHMS[algorithm]

    def run_all():
        return [fn(inst).maxcolor for inst in sample3d]

    benchmark(run_all)


def test_fig7b_profile_and_stats(benchmark, result3d):
    def report():
        sgk = np.array(result3d.maxcolors["SGK"], dtype=float)
        glf = np.array(result3d.maxcolors["GLF"], dtype=float)
        bdp = np.array(result3d.maxcolors["BDP"], dtype=float)
        extras = "\n".join(
            [
                f"SGK vs GLF mean quality gain: {(1 - sgk.sum() / glf.sum()) * 100:.2f}% "
                "(paper: SGK ~0.57% better)",
                f"GLF speed advantage over SGK: "
                f"{relative_slowdown(result3d.times, 'SGK', 'GLF'):.0f}% slower SGK "
                "(paper: GLF 142% faster)",
                f"instances where BDP strictly beats SGK: "
                f"{float(np.mean(bdp < sgk)) * 100:.1f}% (paper: 18.1%)",
            ]
        )
        return suite_quality_report(result3d, "K8 LB") + "\n\n" + extras

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    emit("fig7b 3d performance profile", body)
    emit("fig7a 3d runtime summary", suite_runtime_report(result3d))

    from repro.analysis.svgplot import bars_svg, profile_svg

    emit_svg(
        "fig7b 3d performance profile",
        profile_svg(result3d.profile(), title="Fig 7b — 3D performance profile"),
    )
    summary = runtime_summary(result3d.times)
    emit_svg(
        "fig7a 3d runtime comparison",
        bars_svg(
            list(summary),
            [s["total"] for s in summary.values()],
            title="Fig 7a — 3D total runtime per algorithm",
        ),
    )
