"""Figures 7a/7b — 3D results over all instances, plus the §VI.C statistics.

The paper's 3D findings: GLF and SGK lead on quality, GLF is much faster,
SGK is the slowest, and BDP loses the dominance it had in 2D.  The tables
render from ``campaigns/fig7.toml`` over the shared base-3D campaign run;
the ``test_fig7a_runtime_*`` kernel timings stay pytest-benchmark.
"""

import pytest

from repro.core.algorithms.registry import ALGORITHMS

from benchmarks.conftest import campaign_docs, emit_doc


@pytest.fixture(scope="module")
def sample3d(suite3d):
    mid = [i for i in suite3d if 64 <= i.num_vertices <= 512]
    return (mid or suite3d)[:15]


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig7a_runtime(benchmark, sample3d, algorithm):
    fn = ALGORITHMS[algorithm]

    def run_all():
        return [fn(inst).maxcolor for inst in sample3d]

    benchmark(run_all)


def test_fig7b_profile_and_stats(benchmark):
    docs = benchmark.pedantic(
        lambda: campaign_docs("fig7.toml"), rounds=1, iterations=1
    )
    for doc in docs:
        emit_doc(doc)
