"""Figure 4 — the four datasets projected on the xy plane.

The paper shows density renderings of Dengue, FluAnimal, Pollen and PollenUS
at the largest grid the bandwidth admits.  This bench regenerates the
projections as ASCII density maps plus the summary statistics that
distinguish the datasets' weight regimes (sparsity, skew).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.data.voxelize import density_ascii, voxel_counts_2d

from benchmarks.conftest import emit


def test_fig4_dataset_projections(benchmark, datasets):
    def render():
        blocks = []
        rows = []
        for ds in datasets:
            grid = voxel_counts_2d(ds, "xy", (32, 16))
            occupancy = float((grid > 0).mean())
            top = int(grid.max())
            rows.append(
                (ds.name, ds.num_points, occupancy, top, float(np.median(grid[grid > 0])))
            )
            blocks.append(f"--- {ds.name} (xy, 32x16) ---\n{density_ascii(grid)}")
        table = format_table(
            ("dataset", "points", "occupancy", "max cell", "median occupied"), rows
        )
        return table + "\n\n" + "\n\n".join(blocks)

    body = benchmark(render)
    emit("fig4 dataset projections", body)
