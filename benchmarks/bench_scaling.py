"""Scaling study — runtime growth of each heuristic with instance size.

Validates the complexity claims of Section V: the greedy family and BD are
(near-)linear in the number of edges (`O(E log E)` with constant-bounded
degrees on stencils), and SGK's 2D permutation search costs a constant
factor more per clique.  Each algorithm runs on square 2D grids of doubling
side; the emitted table reports seconds and the growth ratio per doubling
(a ratio near 4 = linear in cells).
"""

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.algorithms.registry import ALGORITHMS
from repro.core.problem import IVCInstance

from benchmarks.conftest import emit

SIDES = (8, 16, 32, 64)


def test_scaling_with_grid_size(benchmark):
    rng = np.random.default_rng(0)
    instances = {
        side: IVCInstance.from_grid_2d(rng.integers(0, 50, size=(side, side)))
        for side in SIDES
    }

    def run():
        table = {}
        for name, fn in ALGORITHMS.items():
            times = []
            for side in SIDES:
                t0 = time.perf_counter()
                coloring = fn(instances[side])
                times.append(time.perf_counter() - t0)
                assert coloring.is_valid()
            table[name] = times
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, times in table.items():
        ratios = [times[i + 1] / max(times[i], 1e-9) for i in range(len(SIDES) - 1)]
        rows.append((name, *[t * 1e3 for t in times], max(ratios)))
    headers = ("algorithm", *(f"{s}x{s} ms" for s in SIDES), "max ratio/doubling")
    body = format_table(headers, rows) + (
        "\n\ncells quadruple per doubling; a max ratio near 4 means linear"
        " cost in the number of cells/edges."
    )
    emit("scaling with grid size", body)
    # Loose sanity: no algorithm grows super-quadratically in cells.
    for name, times in table.items():
        for i in range(len(SIDES) - 1):
            assert times[i + 1] <= 40 * max(times[i], 1e-5), (name, i)
