"""Scaling study — runtime growth of each heuristic with instance size.

Validates the complexity claims of Section V: the greedy family and BD are
(near-)linear in the number of edges (`O(E log E)` with constant-bounded
degrees on stencils), and SGK's 2D permutation search costs a constant
factor more per clique.  ``campaigns/scaling.toml`` runs each algorithm on
square 2D grids of doubling side; the emitted table reports seconds and the
growth ratio per doubling (a ratio near 4 = linear in cells).
"""

from repro.campaign import suite_result_from_harvest

from benchmarks.conftest import bench_campaign, campaign_docs, emit_doc


def test_scaling_with_grid_size(benchmark):
    docs = benchmark.pedantic(
        lambda: campaign_docs("scaling.toml"), rounds=1, iterations=1
    )
    for doc in docs:
        emit_doc(doc)
    result = suite_result_from_harvest(bench_campaign("scaling.toml"))
    sides = sorted(int(inst.metadata["side"]) for inst in result.instances)
    index_of = {
        int(inst.metadata["side"]): i for i, inst in enumerate(result.instances)
    }
    # Loose sanity: no algorithm grows super-quadratically in cells.
    for name in result.algorithms:
        times = [result.times[name][index_of[side]] for side in sides]
        for i in range(len(sides) - 1):
            assert times[i + 1] <= 40 * max(times[i], 1e-5), (name, i)
