"""Ablation — which weight regime favors which heuristic.

The paper's 2D/3D ranking flip (BDP dominates 2D, GLF/SGK dominate 3D) is a
weight-regime effect: dense, smooth count grids favor the construction-based
BDP, while sparse/heavy-tailed grids favor weight-driven first fit.  This
bench runs ``campaigns/weight_regime.toml`` — controlled weight
distributions, bit-identical to the pre-campaign version of this file —
which is how EXPERIMENTS.md explains any ranking deltas between the paper's
real datasets and our synthetic analogues.
"""

from repro.campaign import suite_result_from_harvest

from benchmarks.conftest import bench_campaign, campaign_docs, emit_doc


def _regime_ratios(result, label):
    idx = result.indices_by_metadata("regime", label)
    lb_total = sum(result.lower_bounds[i] for i in idx)
    return {
        name: sum(result.maxcolors[name][i] for i in idx) / max(lb_total, 1)
        for name in result.algorithms
    }


def test_ablation_weight_regime(benchmark):
    docs = benchmark.pedantic(
        lambda: campaign_docs("weight_regime.toml"), rounds=1, iterations=1
    )
    for doc in docs:
        emit_doc(doc)
    result = suite_result_from_harvest(bench_campaign("weight_regime.toml"))
    smooth = _regime_ratios(result, "near-constant")
    spiky = _regime_ratios(result, "sparse spiky")
    assert smooth["BDP"] < smooth["GLF"]
    assert spiky["GLF"] < spiky["BDP"]
