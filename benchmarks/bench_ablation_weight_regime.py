"""Ablation — which weight regime favors which heuristic.

The paper's 2D/3D ranking flip (BDP dominates 2D, GLF/SGK dominate 3D) is a
weight-regime effect: dense, smooth count grids favor the construction-based
BDP, while sparse/heavy-tailed grids favor weight-driven first fit.  This
bench makes the mechanism explicit on controlled weight distributions, which
is how EXPERIMENTS.md explains any ranking deltas between the paper's real
datasets and our synthetic analogues.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.core.bounds import lower_bound
from repro.core.problem import IVCInstance

from benchmarks.conftest import emit

SHAPE = (16, 16)
REPEATS = 8


def _regimes(rng):
    yield "near-constant", lambda: rng.integers(45, 55, size=SHAPE)
    yield "uniform dense", lambda: rng.integers(10, 50, size=SHAPE)
    yield "exponential", lambda: rng.poisson(rng.exponential(5.0, size=SHAPE))

    def sparse_spiky():
        grid = np.zeros(SHAPE, dtype=int)
        idx = rng.integers(0, SHAPE[0], size=(30, 2))
        for i, j in idx:
            grid[i, j] += int(rng.integers(5, 60))
        return grid

    yield "sparse spiky", sparse_spiky


def test_ablation_weight_regime(benchmark):
    rng = np.random.default_rng(42)

    def run():
        rows = []
        for label, gen in _regimes(rng):
            totals = {name: 0 for name in ALGORITHMS}
            lb_total = 0
            for _ in range(REPEATS):
                inst = IVCInstance.from_grid_2d(gen())
                lb_total += lower_bound(inst)
                for name in ALGORITHMS:
                    totals[name] += color_with(inst, name).maxcolor
            rows.append(
                (label, *[totals[name] / max(lb_total, 1) for name in ALGORITHMS])
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = format_table(("regime", *ALGORITHMS), rows) + (
        "\n\nratios to the K4 lower bound; lower is better.  BDP/BD dominate"
        " the smooth regimes, GLF/SGK the spiky ones — the paper's 2D-vs-3D"
        " ranking flip in miniature."
    )
    emit("ablation weight regime", body)
    by_label = {r[0]: dict(zip(ALGORITHMS, r[1:])) for r in rows}
    assert by_label["near-constant"]["BDP"] < by_label["near-constant"]["GLF"]
    assert by_label["sparse spiky"]["GLF"] < by_label["sparse spiky"]["BDP"]
