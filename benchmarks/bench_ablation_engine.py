"""Ablation — sort-and-scan first fit vs the conflict-jump variant.

DESIGN.md §6: the paper's engine sorts neighbor intervals and scans once
(O(Γ log Γ) per vertex); the ablation baseline repeatedly jumps over
conflicts without sorting (worst case O(Γ²)).  Both produce identical
colorings; this bench quantifies the speed difference on the same instance
sample.
"""

import numpy as np
import pytest

from repro.core.greedy_engine import (
    first_fit_start,
    first_fit_start_naive,
    greedy_color,
)
from repro.core.orderings import largest_first_order

from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def engine_sample(suite2d):
    sample = [i for i in suite2d if i.num_vertices >= 64][:10]
    return sample or suite2d[:10]


@pytest.mark.parametrize(
    "engine",
    [first_fit_start, first_fit_start_naive],
    ids=["sort-and-scan", "conflict-jump"],
)
def test_ablation_engine(benchmark, engine_sample, engine):
    def run():
        out = []
        for inst in engine_sample:
            coloring = greedy_color(
                inst, largest_first_order(inst), first_fit=engine
            )
            out.append(coloring.maxcolor)
        return out

    result = benchmark(run)
    # Identical colorings regardless of engine.
    reference = [
        greedy_color(inst, largest_first_order(inst)).maxcolor
        for inst in engine_sample
    ]
    assert result == reference


def test_ablation_engine_agreement_report(benchmark, engine_sample):
    def check():
        agree = 0
        for inst in engine_sample:
            order = largest_first_order(inst)
            a = greedy_color(inst, order, first_fit=first_fit_start)
            b = greedy_color(inst, order, first_fit=first_fit_start_naive)
            agree += int(np.array_equal(a.starts, b.starts))
        return agree

    agree = benchmark.pedantic(check, rounds=1, iterations=1)
    emit(
        "ablation engine",
        f"engines produce bit-identical colorings on {agree}/{len(engine_sample)} "
        "instances (see pytest-benchmark table for the timing gap)",
    )
    assert agree == len(engine_sample)
