"""Figures 5a/5b — 2D results over all instances, plus the §VI.B statistics.

* ``test_fig5a_runtime_*`` — pytest-benchmark times each algorithm over a
  fixed sample of suite instances (the runtime-comparison bars of Fig. 5a).
* ``test_fig5b_profile`` — emits the performance profile over the full 2D
  suite (Fig. 5b) and the §VI.B text statistics via
  :mod:`repro.reports`.
"""

import pytest

from repro.analysis.stats import runtime_summary
from repro.core.algorithms.registry import ALGORITHMS
from repro.reports import (
    bd_improvement_report,
    suite_quality_report,
    suite_runtime_report,
)

from benchmarks.conftest import emit, emit_svg


@pytest.fixture(scope="module")
def sample2d(suite2d):
    """A deterministic sample of mid-sized instances for kernel timing."""
    mid = [i for i in suite2d if 64 <= i.num_vertices <= 512]
    return (mid or suite2d)[:20]


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig5a_runtime(benchmark, sample2d, algorithm):
    fn = ALGORITHMS[algorithm]

    def run_all():
        return [fn(inst).maxcolor for inst in sample2d]

    benchmark(run_all)


def test_fig5b_profile_and_stats(benchmark, result2d):
    def report():
        return "\n\n".join(
            [
                suite_quality_report(result2d, "K4 LB"),
                bd_improvement_report(result2d),
            ]
        )

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    emit("fig5b 2d performance profile", body)
    emit("fig5a 2d runtime summary", suite_runtime_report(result2d))

    from repro.analysis.svgplot import bars_svg, profile_svg

    emit_svg(
        "fig5b 2d performance profile",
        profile_svg(result2d.profile(), title="Fig 5b — 2D performance profile"),
    )
    summary = runtime_summary(result2d.times)
    emit_svg(
        "fig5a 2d runtime comparison",
        bars_svg(
            list(summary),
            [s["total"] for s in summary.values()],
            title="Fig 5a — 2D total runtime per algorithm",
        ),
    )
