"""Figures 5a/5b — 2D results over all instances, plus the §VI.B statistics.

* ``test_fig5a_runtime_*`` — pytest-benchmark times each algorithm over a
  fixed sample of suite instances (the runtime-comparison bars of Fig. 5a).
* ``test_fig5b_profile_and_stats`` — renders ``campaigns/fig5.toml``: the
  performance profile over the full 2D suite (Fig. 5b), the §VI.B text
  statistics, and the runtime summary, all from the shared base-2D campaign
  run (``stencil-ivc campaign run campaigns/fig5.toml`` reproduces the same
  tables byte-for-byte).
"""

import pytest

from repro.core.algorithms.registry import ALGORITHMS

from benchmarks.conftest import campaign_docs, emit_doc


@pytest.fixture(scope="module")
def sample2d(suite2d):
    """A deterministic sample of mid-sized instances for kernel timing."""
    mid = [i for i in suite2d if 64 <= i.num_vertices <= 512]
    return (mid or suite2d)[:20]


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig5a_runtime(benchmark, sample2d, algorithm):
    fn = ALGORITHMS[algorithm]

    def run_all():
        return [fn(inst).maxcolor for inst in sample2d]

    benchmark(run_all)


def test_fig5b_profile_and_stats(benchmark):
    docs = benchmark.pedantic(
        lambda: campaign_docs("fig5.toml"), rounds=1, iterations=1
    )
    for doc in docs:
        emit_doc(doc)
