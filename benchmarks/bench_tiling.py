"""Tiling benchmark — per-tile-count scaling and the out-of-core headline.

Two studies over synthetic weight grids:

* **scaling** — one grid colored through the tiler at several tile counts
  (plus the monolithic kernel as the 1-tile baseline), verifying bit-
  identity at every point and reporting seam/interior split, throughput,
  and peak RSS.  The seam pass is sequential, so its share bounds the
  parallel speedup available to the interior pass (Amdahl).
* **out-of-core headline** — a grid far beyond the monolithic kernel's
  memory appetite (default 16384², ~268 M cells, >12 GB of working arrays
  monolithically) colored in digest-only mode (``assemble=False``), whose
  peak memory is independent of grid size.  Reported: wall time, combined
  digest, maxcolor, peak RSS.

Run standalone (writes the repo-root ``BENCH_tiling.json``)::

    PYTHONPATH=src python benchmarks/bench_tiling.py [--quick] [--out PATH]

``--quick`` shrinks both studies for CI smoke; the committed report comes
from a full run.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
from pathlib import Path
from time import perf_counter

import numpy as np


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _scaling_study(side: int, tile_sides, jobs: int, seed: int) -> dict:
    from repro.core.algorithms.registry import color_with
    from repro.core.problem import IVCInstance
    from repro.data import SyntheticWeightSource
    from repro.tiling import color_tiled

    source = SyntheticWeightSource((side, side), seed=seed)
    weights = source.region(((0, side), (0, side)))
    t0 = perf_counter()
    mono = color_with(IVCInstance.from_grid_2d(weights, name="bench"), "GLL")
    mono_seconds = perf_counter() - t0
    mono_starts = np.asarray(mono.starts).ravel()

    points = []
    for tile_side in tile_sides:
        t0 = perf_counter()
        tiled = color_tiled(source, tile_shape=(tile_side, tile_side), jobs=jobs)
        elapsed = perf_counter() - t0
        identical = tiled.maxcolor == mono.maxcolor and np.array_equal(
            np.asarray(tiled.starts).ravel(), mono_starts
        )
        points.append({
            "tile_side": tile_side,
            "tiles": len(tiled.plan.tiles),
            "seconds": elapsed,
            "seam_seconds": tiled.seam_elapsed,
            "interior_seconds": tiled.elapsed,
            "seam_fraction": tiled.seam_elapsed / elapsed if elapsed else None,
            "cells_per_sec": side * side / elapsed if elapsed else None,
            "vs_monolithic": elapsed / mono_seconds if mono_seconds else None,
            "identical": bool(identical),
        })
    return {
        "side": side,
        "cells": side * side,
        "jobs": jobs,
        "monolithic_seconds": mono_seconds,
        "maxcolor": int(mono.maxcolor),
        "points": points,
        "all_identical": all(p["identical"] for p in points),
    }


def _out_of_core_study(side: int, tile_side: int, jobs: int, seed: int) -> dict:
    from repro.data import SyntheticWeightSource
    from repro.tiling import color_tiled

    source = SyntheticWeightSource((side, side), seed=seed)
    t0 = perf_counter()
    tiled = color_tiled(
        source, tile_shape=(side, tile_side), jobs=jobs, assemble=False
    )
    elapsed = perf_counter() - t0
    return {
        "side": side,
        "cells": side * side,
        "tile_shape": list(tiled.plan.tile_shape),
        "tiles": len(tiled.plan.tiles),
        "jobs": jobs,
        "seconds": elapsed,
        "seam_seconds": tiled.seam_elapsed,
        "cells_per_sec": side * side / elapsed if elapsed else None,
        "maxcolor": int(tiled.maxcolor),
        "digest": tiled.digest,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "monolithic_working_set_gb": round(side * side * 6 * 8 / 1e9, 1),
    }


def run_tiling_benchmark(*, quick: bool = False, seed: int = 0) -> dict:
    if quick:
        scaling = _scaling_study(512, (512, 256, 128, 64), jobs=2, seed=seed)
        headline = _out_of_core_study(4096, 256, jobs=2, seed=seed)
    else:
        scaling = _scaling_study(2048, (2048, 1024, 512, 256), jobs=4, seed=seed)
        headline = _out_of_core_study(16384, 512, jobs=4, seed=seed)
    return {
        "meta": {
            "tool": "benchmarks/bench_tiling.py",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "quick": quick,
            "seed": seed,
        },
        "scaling": scaling,
        "out_of_core": headline,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grids for CI smoke")
    parser.add_argument("--out", default="BENCH_tiling.json",
                        help="JSON report path ('' skips the file)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    report = run_tiling_benchmark(quick=args.quick, seed=args.seed)
    scaling = report["scaling"]
    print(f"scaling {scaling['side']}x{scaling['side']} (jobs={scaling['jobs']}, "
          f"monolithic {scaling['monolithic_seconds']:.2f}s):")
    for p in scaling["points"]:
        print(f"  {p['tiles']:>4} tiles: {p['seconds']:7.2f}s  "
              f"seam {p['seam_fraction']:.0%}  "
              f"{p['cells_per_sec'] / 1e6:6.2f} Mcells/s  "
              f"identical={p['identical']}")
    ooc = report["out_of_core"]
    print(f"out-of-core {ooc['side']}x{ooc['side']}: {ooc['seconds']:.1f}s, "
          f"{ooc['cells_per_sec'] / 1e6:.2f} Mcells/s, "
          f"peak RSS {ooc['peak_rss_mb']} MB "
          f"(monolithic working set ~{ooc['monolithic_working_set_gb']} GB), "
          f"digest {ooc['digest']}")
    if args.out:
        path = Path(args.out)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {path}")
    if not scaling["all_identical"]:
        print("error: tiled coloring diverged from the monolithic kernel",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
