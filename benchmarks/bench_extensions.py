"""Extension heuristics vs the paper's seven (future-work exploration).

The paper's conclusion asks whether better heuristics exist.  This bench
runs ``campaigns/extensions.toml`` — the extension set (greedy
smallest-last GSL, post-optimized GLF+P, iterated fixed-point BD+IP, and
SGK's weight-sorted shortcut SGK-ws) against the original seven on a
~120-instance sample of the 2D suite — and asserts the extensions'
construction guarantees on the harvested colorings.
"""

import numpy as np

from repro.campaign import suite_result_from_harvest

from benchmarks.conftest import bench_campaign, campaign_docs, emit_doc


def test_extension_algorithms(benchmark):
    docs = benchmark.pedantic(
        lambda: campaign_docs("extensions.toml"), rounds=1, iterations=1
    )
    for doc in docs:
        emit_doc(doc)
    result = suite_result_from_harvest(bench_campaign("extensions.toml"))
    # Extensions must honor their construction guarantees.
    glf = np.array(result.maxcolors["GLF"])
    glfp = np.array(result.maxcolors["GLF+P"])
    bdp = np.array(result.maxcolors["BDP"])
    bdip = np.array(result.maxcolors["BD+IP"])
    assert np.all(glfp <= glf)
    assert np.all(bdip <= np.array(result.maxcolors["BD"]))
    # Iterated post-optimization should be at least as good as one pass on
    # aggregate (it starts from the same BD coloring).
    assert bdip.sum() <= bdp.sum() + 1e-9
