"""Extension heuristics vs the paper's seven (future-work exploration).

The paper's conclusion asks whether better heuristics exist.  This bench
pits the extension set — greedy smallest-last (GSL), post-optimized GLF
(GLF+P), iterated fixed-point BD post-optimization (BD+IP), and SGK's
weight-sorted shortcut everywhere (SGK-ws) — against the original seven on
the 2D suite.
"""

import numpy as np

from repro.analysis.performance_profiles import profile_to_text
from repro.analysis.reporting import format_table
from repro.analysis.stats import mean_ratio_to
from repro.core.algorithms.registry import EXTENDED_ALGORITHMS
from repro.experiments import run_suite

from benchmarks.conftest import emit


def test_extension_algorithms(benchmark, suite2d):
    sample = suite2d[:: max(1, len(suite2d) // 120)]

    def run():
        return run_suite(sample, algorithms=list(EXTENDED_ALGORITHMS))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    prof = result.profile()
    lbs = [float(b) for b in result.lower_bounds]
    rows = [
        (
            name,
            mean_ratio_to([float(v) for v in result.maxcolors[name]], lbs),
            float(np.sum(result.times[name])),
        )
        for name in result.algorithms
    ]
    body = "\n".join(
        [
            f"instances: {result.num_instances}",
            "",
            profile_to_text(prof),
            "",
            format_table(("algorithm", "mean ratio to LB", "total s"), rows),
        ]
    )
    emit("extensions vs paper algorithms", body)
    # Extensions must honor their construction guarantees.
    glf = np.array(result.maxcolors["GLF"])
    glfp = np.array(result.maxcolors["GLF+P"])
    bdp = np.array(result.maxcolors["BDP"])
    bdip = np.array(result.maxcolors["BD+IP"])
    assert np.all(glfp <= glf)
    assert np.all(bdip <= np.array(result.maxcolors["BD"]))
    # Iterated post-optimization should be at least as good as one pass on
    # aggregate (it starts from the same BD coloring).
    assert bdip.sum() <= bdp.sum() + 1e-9
