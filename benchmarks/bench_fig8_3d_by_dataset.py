"""Figure 8 — 3D performance profiles broken down per dataset."""

from repro.analysis.performance_profiles import profile_to_text

from benchmarks.conftest import emit, emit_svg

DATASETS = ("Dengue", "FluAnimal", "Pollen", "PollenUS")


def test_fig8_profiles_by_dataset(benchmark, result3d):
    def report():
        from repro.reports import per_dataset_report

        return per_dataset_report(result3d, DATASETS)

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    emit("fig8 3d profiles by dataset", body)
    from repro.analysis.svgplot import profile_svg

    for name in DATASETS:
        idx = result3d.indices_by_metadata("dataset", name)
        if idx:
            emit_svg(
                f"fig8 3d profile {name}",
                profile_svg(
                    result3d.subset(idx).profile(),
                    title=f"Fig 8 — 3D profile, {name}",
                ),
            )
