"""Figure 8 — 3D performance profiles broken down per dataset.

Renders ``campaigns/fig8.toml`` from the shared base-3D campaign run.
"""

from benchmarks.conftest import campaign_docs, emit_doc


def test_fig8_profiles_by_dataset(benchmark):
    docs = benchmark.pedantic(
        lambda: campaign_docs("fig8.toml"), rounds=1, iterations=1
    )
    for doc in docs:
        emit_doc(doc)
