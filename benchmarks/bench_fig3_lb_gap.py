"""Figure 3 — two coupled odd cycles where both lower bounds are loose.

Regenerates the "lower bounds are not tight" certificate (Section III.D):
maxpair 13, odd-cycle bound 14, exact optimum 16 — verified by both exact
solvers (the paper used an integer linear program; its instance had optimum
17, ours exhibits the same strict gap).
"""

from repro.analysis.reporting import format_table
from repro.core.bounds import maxpair_bound, odd_cycle_bound
from repro.core.exact.branch_and_bound import solve_exact
from repro.core.exact.milp import solve_milp
from repro.data.paper_instances import (
    FIGURE3_BOUNDS,
    FIGURE3_OPTIMUM,
    figure3_two_cycles,
)

from benchmarks.conftest import emit


def test_fig3_bound_gap(benchmark):
    instance = figure3_two_cycles()

    def solve():
        return solve_milp(instance, time_limit=60.0)

    milp = benchmark(solve)
    bnb = solve_exact(instance)
    rows = [
        ("maxpair bound", maxpair_bound(instance)),
        ("odd-cycle bound", odd_cycle_bound(instance, max_len=5)),
        ("exact optimum (MILP)", milp.maxcolor),
        ("exact optimum (B&B)", bnb.maxcolor),
        ("gap over best bound", bnb.maxcolor - FIGURE3_BOUNDS),
        ("paper values", "bounds 14, optimum 17 (same phenomenon)"),
    ]
    emit("fig3 lower-bound gap", format_table(("quantity", "value"), rows))
    assert milp.proven_optimal
    assert milp.maxcolor == bnb.maxcolor == FIGURE3_OPTIMUM
    assert FIGURE3_OPTIMUM > FIGURE3_BOUNDS
