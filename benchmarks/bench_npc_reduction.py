"""Section IV sanity bench — the NAE-3SAT reduction end to end.

Not a paper figure, but the executable core of the NP-completeness theorem:
times the reduction construction plus decision solving, and verifies the
satisfiable/unsatisfiable boundary (including the Fano-plane formula) the
way the proof promises.
"""

from repro.analysis.reporting import format_table
from repro.npc.decision import decide_stencil_coloring
from repro.npc.nae3sat import random_nae3sat, unsatisfiable_example
from repro.npc.reduction import build_reduction, coloring_from_assignment

from benchmarks.conftest import emit


def test_npc_reduction_roundtrip(benchmark):
    def run():
        rows = []
        for label, formula in [
            ("random n=4 m=3", random_nae3sat(4, 3, seed=0)),
            ("random n=5 m=4", random_nae3sat(5, 4, seed=1)),
            ("Fano plane (unsat)", unsatisfiable_example()),
        ]:
            sat = formula.is_satisfiable()
            red = build_reduction(formula)
            shape = red.instance.geometry.shape
            colorable = decide_stencil_coloring(red.instance, red.k, method="milp")
            assert (colorable is not None) == sat, label
            witness = ""
            if sat:
                assignment = formula.solve_brute_force()
                coloring_from_assignment(red, assignment)  # validates internally
                witness = "witness ok"
            rows.append(
                (
                    label,
                    f"{shape[0]}x{shape[1]}x{shape[2]}",
                    int((red.instance.weights > 0).sum()),
                    sat,
                    colorable is not None,
                    witness,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "npc reduction",
        format_table(
            ("formula", "grid", "weighted cells", "NAE-sat", "14-colorable", "note"),
            rows,
        ),
    )
