"""Recolor benchmark — sparse-delta incremental recoloring vs from-scratch.

The perf half of the ``repro.incremental`` acceptance test: for each (shape,
algorithm, dirty-density) cell, apply a random sparse weight delta to a
colored grid and time :func:`~repro.incremental.engine.recolor_grid` against
a cold :func:`~repro.incremental.engine.full_recolor`, asserting the two
colorings are bit-identical every single rep.  Densities span four orders
of magnitude so the sweep shows both regimes: the sparse end where the cone
walk wins (GLF damps cascades hard — its weight-order DAG is shallow) and
the dense end where the cone budget trips and the always-correct fallback
engages.

The pytest entry runs a small smoke sweep and writes
``BENCH_recolor.json`` under the artifact root (``out/benchmarks/``,
see ``conftest.out_dir``); the committed repo-root
``BENCH_recolor.json`` holds the full-size sweep
(``python benchmarks/bench_recolor.py``) on 512x512 and 40^3 grids.
"""

import json
import platform
import sys
from time import perf_counter

import numpy as np

DENSITIES = (1e-4, 1e-3, 0.01, 0.05, 0.25)
ALGORITHMS = ("GLL", "GLF")
FULL_SHAPES = ((512, 512), (40, 40, 40))
SMOKE_SHAPES = ((64, 64), (12, 12, 12))


def _bench_cell(shape, algorithm, density, reps, seed, max_weight=100):
    from repro.incremental.engine import full_recolor, recolor_grid

    rng = np.random.default_rng(seed)
    weights = rng.integers(1, max_weight + 1, size=shape, dtype=np.int64)
    n = weights.size
    dirty_cells = max(1, int(round(density * n)))

    base = full_recolor(weights, algorithm)
    incr_seconds = []
    full_seconds = []
    fallbacks = 0
    identical = True
    current, starts = weights, base
    for _ in range(reps):
        idx = rng.choice(n, size=dirty_cells, replace=False)
        new_weights = current.copy()
        new_weights.ravel()[idx] = rng.integers(
            1, max_weight + 1, size=dirty_cells, dtype=np.int64
        )
        t0 = perf_counter()
        outcome = recolor_grid(
            new_weights, starts, idx, algorithm=algorithm
        )
        incr_seconds.append(perf_counter() - t0)
        t0 = perf_counter()
        cold = full_recolor(new_weights, algorithm)
        full_seconds.append(perf_counter() - t0)
        if outcome.mode == "fallback":
            fallbacks += 1
        if not np.array_equal(outcome.starts, cold):
            identical = False
        current, starts = new_weights, cold
    incr = float(np.mean(incr_seconds))
    full = float(np.mean(full_seconds))
    return {
        "shape": list(shape),
        "dim": len(shape),
        "algorithm": algorithm,
        "cells": int(n),
        "density": density,
        "dirty_cells": int(dirty_cells),
        "reps": reps,
        "incremental_seconds": incr,
        "full_seconds": full,
        "speedup": full / incr if incr > 0 else None,
        "fallbacks": fallbacks,
        "identical": identical,
    }


def run_recolor_benchmark(
    shapes=FULL_SHAPES,
    algorithms=ALGORITHMS,
    densities=DENSITIES,
    reps=3,
    seed=0,
):
    results = []
    for shape in shapes:
        for algorithm in algorithms:
            for density in densities:
                results.append(
                    _bench_cell(shape, algorithm, density, reps, seed)
                )
    report = {
        "meta": {
            "tool": "python benchmarks/bench_recolor.py",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "reps": reps,
            "seed": seed,
            "algorithms": list(algorithms),
            "densities": list(densities),
        },
        "results": results,
        "all_identical": all(r["identical"] for r in results),
    }
    return report


def format_recolor_table(report):
    header = (
        f"{'shape':>12} {'alg':>4} {'density':>8} {'dirty':>7} "
        f"{'incr ms':>9} {'full ms':>9} {'speedup':>8} {'fallback':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in report["results"]:
        shape = "x".join(str(d) for d in r["shape"])
        lines.append(
            f"{shape:>12} {r['algorithm']:>4} {r['density']:>8g} "
            f"{r['dirty_cells']:>7} {r['incremental_seconds'] * 1e3:>9.2f} "
            f"{r['full_seconds'] * 1e3:>9.2f} {r['speedup']:>7.1f}x "
            f"{r['fallbacks']:>5}/{r['reps']}"
        )
    return "\n".join(lines)


def test_recolor_speedup_smoke(benchmark):
    from benchmarks.conftest import emit, out_dir

    report = benchmark.pedantic(
        lambda: run_recolor_benchmark(shapes=SMOKE_SHAPES, reps=2),
        rounds=1,
        iterations=1,
    )
    emit("recolor speedups", format_recolor_table(report))
    d = out_dir()
    d.mkdir(parents=True, exist_ok=True)
    (d / "BENCH_recolor.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    # The hard guarantee at any scale: incremental == from-scratch, every
    # rep, fallback reps included.
    assert report["all_identical"], [
        r for r in report["results"] if not r["identical"]
    ]
    # The dense end must exercise the fallback path (cone budget).
    assert any(
        r["fallbacks"] > 0 for r in report["results"] if r["density"] >= 0.05
    )


def main() -> int:
    from pathlib import Path

    report = run_recolor_benchmark()
    print(format_recolor_table(report))
    out = Path(__file__).resolve().parents[1] / "BENCH_recolor.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")

    ok = report["all_identical"]
    if not ok:
        print("FAIL: incremental diverged from full recolor", file=sys.stderr)
    # Acceptance: >=5x on the 512x512 sparse end (<=1% dirty) for at least
    # one supported algorithm, and the fallback engaging at high density.
    sparse = [
        r for r in report["results"]
        if r["shape"] == [512, 512] and r["density"] <= 0.01
    ]
    if not any(r["speedup"] and r["speedup"] >= 5.0 for r in sparse):
        print("FAIL: no >=5x sparse-delta speedup on 512x512", file=sys.stderr)
        ok = False
    dense = [r for r in report["results"] if r["density"] >= 0.05]
    if not any(r["fallbacks"] > 0 for r in dense):
        print("FAIL: fallback never engaged at high density", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
