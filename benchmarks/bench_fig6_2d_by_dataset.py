"""Figure 6 — 2D performance profiles broken down per dataset.

Reproduces the per-dataset view, including the paper's FluAnimal anomaly:
on the sparse FluAnimal instances the clique-first heuristics overtake BDP.
"""

from repro.analysis.performance_profiles import profile_to_text
from repro.analysis.svgplot import profile_svg

from benchmarks.conftest import emit, emit_svg

DATASETS = ("Dengue", "FluAnimal", "Pollen", "PollenUS")


def test_fig6_profiles_by_dataset(benchmark, result2d):
    def report():
        from repro.reports import per_dataset_report

        return per_dataset_report(result2d, DATASETS)

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    emit("fig6 2d profiles by dataset", body)
    for name in DATASETS:
        idx = result2d.indices_by_metadata("dataset", name)
        if idx:
            emit_svg(
                f"fig6 2d profile {name}",
                profile_svg(
                    result2d.subset(idx).profile(),
                    title=f"Fig 6 — 2D profile, {name}",
                ),
            )
