"""Figure 6 — 2D performance profiles broken down per dataset.

Renders ``campaigns/fig6.toml`` from the shared base-2D campaign run,
reproducing the per-dataset view — including the paper's FluAnimal anomaly:
on the sparse FluAnimal instances the clique-first heuristics overtake BDP.
"""

from benchmarks.conftest import campaign_docs, emit_doc


def test_fig6_profiles_by_dataset(benchmark):
    docs = benchmark.pedantic(
        lambda: campaign_docs("fig6.toml"), rounds=1, iterations=1
    )
    for doc in docs:
        emit_doc(doc)
