"""Ablation — SGK's 4! permutation search vs the weight-sorted shortcut.

The paper runs the exhaustive permutation search per clique in 2D but falls
back to weight-sorted vertices in 3D ("checking all 8! permutations per
clique was too time consuming").  This bench applies both rules in 2D to
measure what the search buys, and times them.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.algorithms.clique_first import (
    smart_greedy_largest_clique_first,
    smart_greedy_weight_sorted,
)

from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def sgk_sample(suite2d):
    return [i for i in suite2d if i.num_vertices >= 32][:30] or suite2d[:30]


@pytest.mark.parametrize(
    "variant",
    [smart_greedy_largest_clique_first, smart_greedy_weight_sorted],
    ids=["permutations", "weight-sorted"],
)
def test_ablation_sgk_timing(benchmark, sgk_sample, variant):
    def run():
        return sum(variant(inst).maxcolor for inst in sgk_sample)

    benchmark(run)


def test_ablation_sgk_quality(benchmark, suite2d):
    def run():
        full = np.array(
            [smart_greedy_largest_clique_first(i).maxcolor for i in suite2d]
        )
        sorted_rule = np.array(
            [smart_greedy_weight_sorted(i).maxcolor for i in suite2d]
        )
        return full, sorted_rule

    full, sorted_rule = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("SGK permutations", int(full.sum()), 100.0),
        (
            "SGK weight-sorted",
            int(sorted_rule.sum()),
            100.0 * sorted_rule.sum() / max(full.sum(), 1),
        ),
    ]
    wins = float(np.mean(full < sorted_rule)) * 100
    ties = float(np.mean(full == sorted_rule)) * 100
    emit(
        "ablation sgk",
        format_table(("variant", "total colors", "% of permutation total"), rows)
        + f"\n\npermutation search strictly better on {wins:.1f}% of instances, "
        f"tied on {ties:.1f}%",
    )
