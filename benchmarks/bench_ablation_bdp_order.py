"""Ablation — what the BDP recoloring *order* buys.

DESIGN.md §6: BDP recolors in the paper's clique-guided order (blocks by
non-increasing weight, vertices by increasing start).  Compared against no
post-pass (plain BD), an id-order sweep, and a random-order sweep, on the
full 2D suite.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.algorithms.bipartite_decomposition import bd_with_bound
from repro.core.algorithms.post_opt import bdp_recolor_order
from repro.core.greedy_engine import greedy_recolor_pass

from benchmarks.conftest import emit


def test_ablation_bdp_order(benchmark, suite2d):
    def run():
        totals = {"BD (no post)": 0, "BDP (clique order)": 0, "id order": 0, "random order": 0}
        rng = np.random.default_rng(0)
        for inst in suite2d:
            bd, _rc = bd_with_bound(inst)
            totals["BD (no post)"] += bd.maxcolor
            clique_order = bdp_recolor_order(inst, bd.starts)
            totals["BDP (clique order)"] += int(
                (greedy_recolor_pass(inst, bd.starts, clique_order) + inst.weights).max()
            )
            totals["id order"] += int(
                (greedy_recolor_pass(inst, bd.starts) + inst.weights).max()
            )
            random_order = rng.permutation(inst.num_vertices)
            totals["random order"] += int(
                (greedy_recolor_pass(inst, bd.starts, random_order) + inst.weights).max()
            )
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    base = totals["BD (no post)"]
    rows = [
        (name, total, (1 - total / base) * 100) for name, total in totals.items()
    ]
    emit(
        "ablation bdp order",
        format_table(("recolor order", "total colors", "gain vs BD %"), rows),
    )
    # Any recolor pass only improves; the clique order is the paper's choice.
    assert totals["BDP (clique order)"] <= base
    assert totals["id order"] <= base
    assert totals["random order"] <= base
