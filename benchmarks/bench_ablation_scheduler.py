"""Ablation — runtime-scheduler policy sensitivity (Section VII modeling).

The paper observes that BD and BDP yield different wall-clock times despite
inducing the same task DAG, attributing it to task *submission order*
affecting the OpenMP runtime's decisions.  This bench quantifies that
sensitivity in the simulator: FIFO vs LIFO ready queues and task-creation
throttling windows, across all colorings of one STKDE configuration.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.stkde.runtime import default_costs, simulate_schedule
from repro.stkde.tasks import STKDEProblem

from benchmarks.conftest import emit

MODES = [
    ("fifo", dict(policy="fifo")),
    ("lifo", dict(policy="lifo")),
    ("fifo w=32", dict(policy="fifo", creation_window=32)),
    ("lifo w=32", dict(policy="lifo", creation_window=32)),
]


def test_ablation_scheduler(benchmark, datasets):
    ds = {d.name: d for d in datasets}["PollenUS"]
    box_dims = (16, 7, 16)
    h_space = min(
        ds.axis_length(0) / (2 * box_dims[0]), ds.axis_length(1) / (2 * box_dims[1])
    )
    h_time = ds.axis_length(2) / (2 * box_dims[2])
    problem = STKDEProblem(ds, (8, 8, 8), h_space, h_time, box_dims)
    instance = problem.instance
    costs = default_costs(instance, per_point=1.0, overhead=0.02)

    def run():
        rows = []
        for alg in ALGORITHMS:
            coloring = color_with(instance, alg)
            makespans = [
                simulate_schedule(coloring, num_workers=6, costs=costs, **kwargs).makespan
                for _label, kwargs in MODES
            ]
            rows.append((alg, coloring.maxcolor, *makespans))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = format_table(
        ("algorithm", "maxcolor", *(label for label, _ in MODES)), rows
    ) + (
        "\n\nsame DAG, different queue policies: submission-order sensitivity"
        " is the paper's explanation for BD vs BDP wall-clock differences."
    )
    emit("ablation scheduler", body)
    # Sanity: every policy respects the work/critical-path lower bounds, so
    # no mode can beat the unthrottled FIFO by more than numerical noise
    # ... actually any list schedule is valid; just check spread is bounded.
    for row in rows:
        makespans = np.array(row[2:], dtype=float)
        assert makespans.max() <= 2.0 * makespans.min() + 1e-9
