#!/usr/bin/env python
"""CI smoke for the out-of-core tiler: capped memory, diffed vs monolithic.

Colors a synthetic grid (default 2048x2048) through :func:`repro.tiling.
color_tiled` with the process address space soft-capped (``RLIMIT_AS``),
streaming the starts into an ``.npy`` memmap so peak memory tracks one
tile band, not the grid.  The cap is then restored and the same grid is
colored monolithically; any difference in the starts or maxcolor fails
the run.

Exit status 0 = bit-identical under the cap, 1 = divergence or a tiled
failure, 2 = usage.  Run from the repo root::

    PYTHONPATH=src python tools/tiling_smoke.py --side 2048 --limit-mb 768
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
from pathlib import Path

import numpy as np


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--side", type=int, default=2048,
                        help="square grid side (default 2048)")
    parser.add_argument("--tile", type=int, default=512,
                        help="square tile side (default 512)")
    parser.add_argument("--limit-mb", type=int, default=768,
                        help="RLIMIT_AS soft cap during the tiled run, MB")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv[1:])

    from repro.data import SyntheticWeightSource
    from repro.tiling import color_tiled

    source = SyntheticWeightSource((args.side, args.side), seed=args.seed)
    workdir = Path(tempfile.mkdtemp(prefix="tiling-smoke-"))
    out = workdir / "starts.npy"

    # Soft-cap the address space for the tiled run only.  The cap must sit
    # above what the interpreter already maps; refuse configurations where
    # it cannot bind anything.
    vm_kb = int(Path("/proc/self/status").read_text()
                .split("VmSize:")[1].split()[0])
    cap = args.limit_mb * 1024 * 1024
    if cap <= vm_kb * 1024:
        print(f"error: --limit-mb {args.limit_mb} is below the current "
              f"address space ({vm_kb // 1024} MB)", file=sys.stderr)
        return 2
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
    try:
        tiled = color_tiled(source, tile_shape=(args.tile, args.tile),
                            jobs=1, out=out, assemble=True)
    except MemoryError:
        print(f"error: tiler blew the {args.limit_mb} MB address-space cap",
              file=sys.stderr)
        return 1
    finally:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))

    peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    print(json.dumps({
        "shape": [args.side, args.side],
        "tile_shape": list(tiled.plan.tile_shape),
        "tiles": len(tiled.plan.tiles),
        "maxcolor": tiled.maxcolor,
        "digest": tiled.digest,
        "limit_mb": args.limit_mb,
        "peak_rss_mb": round(peak_mb, 1),
        "seam_seconds": round(tiled.seam_elapsed, 3),
        "tile_seconds": round(tiled.elapsed, 3),
    }, indent=2))

    # Uncapped monolithic reference run over the same weights.
    from repro.core.algorithms.registry import color_with
    from repro.core.problem import IVCInstance

    weights = source.region(((0, args.side), (0, args.side)))
    mono = color_with(IVCInstance.from_grid_2d(weights, name="smoke"), "GLL")
    tiled_starts = np.load(out, mmap_mode="r")
    if tiled.maxcolor != mono.maxcolor or not np.array_equal(
        np.asarray(tiled_starts).ravel(), np.asarray(mono.starts).ravel()
    ):
        print("error: tiled coloring diverged from the monolithic kernel",
              file=sys.stderr)
        return 1
    print(f"tiling smoke: {args.side}x{args.side} bit-identical under "
          f"{args.limit_mb} MB (peak RSS {peak_mb:.0f} MB)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
