#!/usr/bin/env python
"""Layering lint: lower layers must not import higher ones.

The repo is layered (see ``docs/architecture.md``)::

    obs, resilience                 (0)  leaf utilities
    stencil                         (1)  geometry
    runtime                         (2)  config + execution context
    core                            (3)  problem, algorithms, registry
    data, kernels, analysis         (4)  instances, vectorized kernels, stats
    npc, stkde, apps                (5)  applications of the core
    engine, tiling, incremental     (6)  batch execution, tiler, recolorer
    service                         (7)  online serving
    experiments, reports, campaign  (8)  drivers
    api                             (9)  stable facade
    cli                             (10) entry point

A module may import ``repro.*`` packages of rank **at most its own**.  Only
*module-level* imports count: a function-scoped lazy import (the registry's
kernel bindings, ``IVCInstance.from_grid_*`` reaching the substrate cache)
expresses an optional runtime dependency, not a build-order edge, and is
exempt.

The second check asserts configuration discipline: no module outside
``repro/runtime/config.py`` and ``repro/resilience/`` may read
``os.environ`` / ``os.getenv`` — every knob flows through
:class:`repro.runtime.config.RuntimeConfig` (or its ``env_*`` helpers).

The third check keeps :mod:`repro.api` the *only* cross-subsystem composer:
outside ``src/repro/api.py`` (and the root ``__init__``), a module may
import at module level **at most one** of the heavyweight subsystems
{``engine``, ``kernels``, ``service``, ``tiling``}.  Code that needs two of
them composes through the facade — or imports lazily, which the layering
check already exempts.

The fourth check isolates the incremental recolor engine: nothing under
``src/repro/incremental/`` may import ``repro.service`` or ``repro.tiling``
**anywhere** — function bodies included, unlike the layering rule.  The
engine must stay composable below the service and the tiler; only
``repro/api.py`` wires them together.

The fifth check scopes the campaign subsystem: ``repro/campaign/`` may
compose the engine with obs/runtime/experiments (that is its job), but may
never import ``repro.service``, ``repro.tiling`` or ``repro.incremental``
— campaigns execute through the batch engine only.  And ``benchmarks/``
may not import ``repro.engine`` at all: benches reach execution through
:mod:`repro.campaign` (or :mod:`repro.experiments`), never engine
internals.

Exit status 0 = clean, 1 = violations (printed one per line), 2 = usage.
Run from the repo root::

    python tools/check_layers.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: package (top-level under repro/) -> layer rank.  A module may only import
#: packages of rank <= its own.
LAYERS = {
    "obs": 0,
    "resilience": 0,
    "stencil": 1,
    "runtime": 2,
    "core": 3,
    "data": 4,
    "kernels": 4,
    "analysis": 4,
    "npc": 5,
    "stkde": 5,
    "apps": 5,
    "engine": 6,
    "tiling": 6,
    "incremental": 6,
    "service": 7,
    "experiments": 8,
    "reports": 8,
    "campaign": 8,
    "api": 9,
    "cli": 10,
}

#: Heavyweight subsystems: only repro/api.py may compose two or more of
#: these at module level (the cross-subsystem check).
SUBSYSTEMS = frozenset({"engine", "incremental", "kernels", "service", "tiling"})

#: Packages src/repro/incremental/ may never import — not even lazily.  The
#: recolor engine sits below the service and the tiler by construction.
INCREMENTAL_BANNED = frozenset({"service", "tiling"})

#: Packages src/repro/campaign/ may never import — not even lazily.
#: Campaigns run through the batch engine; the service tier, the tiler and
#: the incremental recolorer are out of scope by construction.
CAMPAIGN_BANNED = frozenset({"service", "tiling", "incremental"})

#: Packages benchmarks/ may never import — not even lazily.  Benches go
#: through repro.campaign / repro.experiments, not engine internals.
BENCHMARKS_BANNED = frozenset({"engine"})

#: Modules allowed to module-level import any number of subsystems.
CROSS_EXEMPT = ("src/repro/api.py",)

#: Modules allowed to touch os.environ / os.getenv (repo-relative prefixes).
ENV_ALLOWED = (
    "src/repro/runtime/config.py",
    "src/repro/resilience/",
)

#: The root package __init__ re-exports across layers by design.
ROOT_EXEMPT = ("src/repro/__init__.py",)


def _package_of(path: Path, src: Path) -> str | None:
    """The top-level repro package a file belongs to (None for the root)."""
    rel = path.relative_to(src / "repro")
    head = rel.parts[0]
    if head.endswith(".py"):
        head = head[:-3]
    return head if head in LAYERS else None


def _imported_packages(tree: ast.Module) -> list[tuple[int, str]]:
    """Top-level repro packages imported at module level, with line numbers.

    Only module-level statements are walked — imports inside function or
    method bodies are deliberately exempt (lazy/runtime edges).  Imports
    inside module-level ``if TYPE_CHECKING:`` blocks are exempt too: they
    never execute.
    """
    out: list[tuple[int, str]] = []

    def scan(body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if parts[0] == "repro" and len(parts) > 1:
                        out.append((node.lineno, parts[1]))
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    parts = node.module.split(".")
                    if parts[0] == "repro":
                        if len(parts) > 1:
                            out.append((node.lineno, parts[1]))
                        else:  # `from repro import X` — X is the package
                            for alias in node.names:
                                out.append((node.lineno, alias.name))
            elif isinstance(node, (ast.If, ast.Try)):
                # Walk conditional module-level blocks, except TYPE_CHECKING
                # guards (they never run).
                if isinstance(node, ast.If):
                    test = ast.unparse(node.test)
                    if "TYPE_CHECKING" in test:
                        continue
                    scan(node.body)
                    scan(node.orelse)
                else:
                    scan(node.body)
                    for handler in node.handlers:
                        scan(handler.body)
                    scan(node.orelse)
                    scan(node.finalbody)
    scan(tree.body)
    return out


def _all_imported_packages(tree: ast.Module) -> list[tuple[int, str]]:
    """Top-level repro packages imported *anywhere* in the module.

    Unlike :func:`_imported_packages` this walks function and method bodies
    too — for rules where a lazy import is still a forbidden edge.
    """
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    out.append((node.lineno, parts[1]))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:
                parts = node.module.split(".")
                if parts[0] == "repro":
                    if len(parts) > 1:
                        out.append((node.lineno, parts[1]))
                    else:
                        for alias in node.names:
                            out.append((node.lineno, alias.name))
    return out


class _EnvVisitor(ast.NodeVisitor):
    """Collects os.environ / os.getenv uses anywhere in a module."""

    def __init__(self) -> None:
        self.uses: list[int] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and node.attr in ("environ", "getenv", "putenv")
        ):
            self.uses.append(node.lineno)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "os" and any(
            alias.name in ("environ", "getenv") for alias in node.names
        ):
            self.uses.append(node.lineno)
        self.generic_visit(node)


def check(repo_root: Path) -> list[str]:
    src = repo_root / "src"
    violations: list[str] = []
    for path in sorted((src / "repro").rglob("*.py")):
        rel = path.relative_to(repo_root).as_posix()
        try:
            tree = ast.parse(path.read_text(), filename=rel)
        except SyntaxError as exc:
            violations.append(f"{rel}:{exc.lineno}: does not parse: {exc.msg}")
            continue

        # --- layering -----------------------------------------------------
        imports = _imported_packages(tree)
        if rel not in ROOT_EXEMPT:
            package = _package_of(path, src)
            if package is not None:
                rank = LAYERS[package]
                for lineno, imported in imports:
                    target = LAYERS.get(imported)
                    if target is not None and target > rank:
                        violations.append(
                            f"{rel}:{lineno}: layer '{package}' (rank {rank}) "
                            f"imports higher layer '{imported}' (rank {target})"
                        )

        # --- cross-subsystem discipline -----------------------------------
        if rel not in ROOT_EXEMPT and rel not in CROSS_EXEMPT:
            package = _package_of(path, src)
            foreign = sorted(
                {pkg for _, pkg in imports if pkg in SUBSYSTEMS and pkg != package}
            )
            if len(foreign) > 1:
                violations.append(
                    f"{rel}: composes {len(foreign)} subsystems at module "
                    f"level ({', '.join(foreign)}) — only repro/api.py may; "
                    "import lazily or go through the facade"
                )

        # --- incremental isolation ---------------------------------------
        if rel.startswith("src/repro/incremental/"):
            for lineno, imported in _all_imported_packages(tree):
                if imported in INCREMENTAL_BANNED:
                    violations.append(
                        f"{rel}:{lineno}: repro.incremental imports "
                        f"'repro.{imported}' — the recolor engine depends on "
                        "kernels/core only, never service or tiling (even "
                        "lazily); compose through repro/api.py"
                    )

        # --- campaign scope ----------------------------------------------
        if rel.startswith("src/repro/campaign/"):
            for lineno, imported in _all_imported_packages(tree):
                if imported in CAMPAIGN_BANNED:
                    violations.append(
                        f"{rel}:{lineno}: repro.campaign imports "
                        f"'repro.{imported}' — campaigns execute through the "
                        "batch engine only (even lazily); compose through "
                        "repro/api.py"
                    )

        # --- environment discipline --------------------------------------
        if not any(rel.startswith(prefix) for prefix in ENV_ALLOWED):
            visitor = _EnvVisitor()
            visitor.visit(tree)
            for lineno in visitor.uses:
                violations.append(
                    f"{rel}:{lineno}: os.environ read outside "
                    "repro/runtime/config.py and repro/resilience/ — "
                    "route the knob through RuntimeConfig"
                )

    # --- benchmark discipline --------------------------------------------
    bench_root = repo_root / "benchmarks"
    if bench_root.is_dir():
        for path in sorted(bench_root.glob("*.py")):
            rel = path.relative_to(repo_root).as_posix()
            try:
                tree = ast.parse(path.read_text(), filename=rel)
            except SyntaxError as exc:
                violations.append(f"{rel}:{exc.lineno}: does not parse: {exc.msg}")
                continue
            for lineno, imported in _all_imported_packages(tree):
                if imported in BENCHMARKS_BANNED:
                    violations.append(
                        f"{rel}:{lineno}: benchmarks import "
                        f"'repro.{imported}' — benches run through "
                        "repro.campaign (or repro.experiments), never the "
                        "engine directly"
                    )
    return violations


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    if not (root / "src" / "repro").is_dir():
        print(f"usage: {argv[0]} [repo-root]  (no src/repro under {root})")
        return 2
    violations = check(root)
    for line in violations:
        print(line)
    if violations:
        print(f"\n{len(violations)} layering violation(s)")
        return 1
    print("layering: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
