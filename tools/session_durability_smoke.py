#!/usr/bin/env python
"""CI chaos smoke for durable recolor sessions: SIGKILL mid-stream, replay.

Starts a router with two spawned workers sharing one spill directory (the
workers inherit ``REPRO_FAULTS``, so CI runs the stream under a seeded
fault plan — e.g. torn journal appends and stale checkpoints), seeds a few
recolor sessions, streams sparse deltas, then SIGKILLs the worker that
owns each session mid-stream.  The durability contract under test:

* the remaining deltas are still served — the failover sibling (or the
  restarted slot) rebuilds the session by replaying its write-ahead
  journal + checkpoint from the shared spill directory;
* the fleet reports ``session_recoveries >= 1`` and at least one delta
  response carries the ``recovered`` flag;
* the client performs **zero** mirror re-seeds — recovery is entirely
  server-side;
* each session's final client mirror (weights *and* starts) matches a
  cold in-process full recolor bit-for-bit.

Exit status 0 = all of the above held, 1 = a violated invariant, 2 =
usage.  Run from the repo root::

    REPRO_FAULTS='seed=13;durability.journal.append:torn=0.1,max=4' \\
        PYTHONPATH=src python tools/session_durability_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", default="32x32",
                        help="session grid shape, e.g. 32x32 or 10x10x10")
    parser.add_argument("--algorithm", default="GLF")
    parser.add_argument("--sessions", type=int, default=2)
    parser.add_argument("--deltas", type=int, default=24,
                        help="deltas streamed per session (kill at midpoint)")
    parser.add_argument("--cells", type=int, default=4,
                        help="cells rewritten per delta")
    parser.add_argument("--attempts", type=int, default=8,
                        help="send attempts per delta before giving up")
    parser.add_argument("--checkpoint-interval", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv[1:])

    try:
        shape = tuple(int(d) for d in args.shape.lower().split("x"))
        if len(shape) not in (2, 3) or any(d < 2 for d in shape):
            raise ValueError
    except ValueError:
        print(f"error: bad --shape {args.shape!r}", file=sys.stderr)
        return 2

    from repro.incremental.engine import full_recolor
    from repro.resilience import RetryPolicy
    from repro.service.client import ServiceClient
    from repro.service.frames import session_routing_key
    from repro.service.router import RouterConfig, RouterThread, rank_workers
    from repro.service.server import ServerConfig
    from repro.runtime.config import DurabilityConfig, RuntimeConfig

    rng = np.random.default_rng(args.seed)
    n = int(np.prod(shape))
    cells = max(1, min(args.cells, n))
    problems: list[str] = []
    retried = 0
    kills = 0
    recovered_answers = 0

    config = RouterConfig(
        port=0,
        workers=2,
        worker_config=ServerConfig(
            compute_threads=1, default_timeout=30.0,
            runtime=RuntimeConfig(durability=DurabilityConfig(
                checkpoint_interval=args.checkpoint_interval,
            )),
        ),
    )
    with RouterThread(config) as thread:
        client = ServiceClient(
            "127.0.0.1", thread.port, timeout=30.0,
            retry=RetryPolicy(retries=4), retry_seed=args.seed,
        )
        with client:
            names = [f"durable-s{i}" for i in range(args.sessions)]
            mirrors: dict[str, np.ndarray] = {}
            for name in names:
                weights = rng.integers(1, 101, size=shape, dtype=np.int64)
                for attempt in range(args.attempts):
                    response = client.recolor_open(
                        name, weights, args.algorithm,
                        request_id=f"{name}/seed/{attempt}",
                    )
                    if response.ok:
                        break
                    retried += 1
                else:
                    problems.append(f"{name}: seed never accepted")
                mirrors[name] = weights.copy()

            def stream(step_range: range) -> None:
                nonlocal retried, recovered_answers
                for step in step_range:
                    for name in names:
                        current = mirrors[name]
                        idx = rng.choice(n, size=cells, replace=False)
                        vals = rng.integers(1, 101, size=cells)
                        for attempt in range(args.attempts):
                            response = client.recolor_delta(
                                name, idx, vals,
                                request_id=f"{name}/d{step}/{attempt}",
                            )
                            if response.ok:
                                if response.recovered:
                                    recovered_answers += 1
                                current.ravel()[idx] = vals
                                break
                            retried += 1
                        else:
                            problems.append(
                                f"{name} delta {step}: no ok answer in "
                                f"{args.attempts} attempts "
                                f"(last: {response.status}: {response.error})"
                            )

            half = max(1, args.deltas // 2)
            stream(range(half))

            # SIGKILL every worker owning an active session (with two
            # workers and several sessions this usually kills both slots —
            # the harder variant of the single-owner chaos test).
            owners = {
                rank_workers(session_routing_key(name), config.workers)[0]
                for name in names
            }
            for index in sorted(owners):
                handle = thread.router.pool.handles[index]
                handle.process.kill()
                handle.process.join(5.0)
                kills += 1

            stream(range(half, args.deltas))

            divergences = 0
            for name in names:
                state = client.recolor_state(name)
                if state is None:
                    divergences += 1
                    problems.append(f"{name}: no client mirror")
                    continue
                weights, starts = state
                if not np.array_equal(weights, mirrors[name]):
                    divergences += 1
                    problems.append(f"{name}: mirror weights diverged")
                    continue
                cold = full_recolor(weights, args.algorithm)
                if not np.array_equal(starts, cold):
                    divergences += 1
                    problems.append(
                        f"{name}: streamed coloring diverged from cold "
                        f"full recolor on "
                        f"{int(np.count_nonzero(starts != cold))} cells"
                    )

            snap = client.metrics()
            fleet = snap.get("fleet", {}).get("counters", {})
            recoveries = int(fleet.get("session_recoveries", 0))
            if recoveries < 1:
                problems.append(
                    f"expected session_recoveries >= 1 after {kills} "
                    f"SIGKILLs, fleet reports {recoveries}"
                )
            if recovered_answers < 1:
                problems.append(
                    "no delta response carried the recovered flag"
                )
            if client.reseeds_used != 0:
                problems.append(
                    f"client performed {client.reseeds_used} mirror "
                    f"re-seeds; durable recovery must need zero"
                )

            print(json.dumps({
                "shape": list(shape),
                "algorithm": args.algorithm,
                "faults": os.environ.get("REPRO_FAULTS", ""),
                "sessions": args.sessions,
                "deltas_per_session": args.deltas,
                "workers_killed": kills,
                "retries": retried,
                "recovered_answers": recovered_answers,
                "client_reseeds": client.reseeds_used,
                "divergences": divergences,
                "fleet_counters": {
                    k: v for k, v in sorted(fleet.items())
                    if k.startswith(("session_", "journal_", "checkpoint",
                                     "recolor_"))
                },
            }, indent=2))

    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    print(
        f"session durability smoke: {args.sessions} sessions x {shape}, "
        f"{kills} worker SIGKILL(s) mid-stream, {recovered_answers} "
        f"journal-replay answers, 0 client re-seeds, final colorings "
        f"bit-identical to cold recolor"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
