#!/usr/bin/env python
"""CI smoke for the scaled service tier: 2 workers, faults, a worker kill.

Starts a router over a pool of worker processes (binary wire, shared L2
spill directory), drives a verified zipf/pipelined loadgen burst through
it, then kills one worker outright and drives a second burst: every
request must still be answered bit-identically — by failover to the live
sibling and a supervised restart — and the merged metrics must record the
restart.  Workers inherit ``REPRO_FAULTS`` from the environment, so CI
runs the whole thing under a seeded fault plan on top of the kill.

Exit status 0 = both bursts fully served and bit-identical with the
restart observed, 1 = a lost/diverged/errored request or no restart,
2 = usage.  Run from the repo root::

    REPRO_FAULTS='seed=7;service.compute:error=0.2,max=6' \\
        PYTHONPATH=src python tools/service_scale_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def _burst_problems(report, label: str, requests: int) -> list[str]:
    problems = []
    if report.ok != requests:
        problems.append(f"{label}: {report.ok} of {requests} requests served ok")
    if report.divergences:
        problems.append(f"{label}: {report.divergences} served colorings diverged")
    if report.errors:
        problems.append(f"{label}: {report.errors} error responses")
    if report.connection_failures:
        problems.append(f"{label}: {report.connection_failures} requests lost to "
                        "connection failures")
    if report.wire != "binary":
        problems.append(f"{label}: negotiated wire {report.wire!r}, expected binary")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--requests", type=int, default=300,
                        help="requests per burst (default 300)")
    parser.add_argument("--concurrency", type=int, default=6)
    parser.add_argument("--pipeline", type=int, default=4,
                        help="requests in flight per connection (default 4)")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="zipf popularity skew (default 1.1)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv[1:])

    from repro.service.client import ServiceClient
    from repro.service.loadgen import build_workload, run_loadgen
    from repro.service.router import RouterConfig, RouterThread
    from repro.service.server import ServerConfig

    config = RouterConfig(
        port=0,
        workers=args.workers,
        worker_config=ServerConfig(
            max_batch=16, batch_window=0.002, queue_limit=128,
            cache_size=64, compute_threads=1, default_timeout=30.0,
        ),
    )
    workload = build_workload(
        [(24, 24), (16, 16), (8, 8, 4)], distinct=6,
        algorithm="GLL", seed=args.seed,
    )
    problems: list[str] = []
    with RouterThread(config) as thread:
        report = run_loadgen(
            "127.0.0.1", thread.port, workload,
            requests=args.requests, concurrency=args.concurrency,
            verify=True, seed=args.seed,
            pipeline=args.pipeline, zipf=args.zipf,
        )
        problems += _burst_problems(report, "burst 1", args.requests)
        if len(report.workers_seen) < args.workers:
            problems.append(
                f"burst 1: only {sorted(report.workers_seen)} served traffic "
                f"({args.workers} workers expected)"
            )

        # Kill one worker outright.  The next burst's requests for its keys
        # must fail over to the sibling (warm from the shared L2 tier) while
        # the supervisor restarts the slot — degraded, never failed.
        victim = thread.router.pool.handles[0]
        victim.process.kill()
        victim.process.join(5.0)

        report2 = run_loadgen(
            "127.0.0.1", thread.port, workload,
            requests=args.requests, concurrency=args.concurrency,
            verify=True, seed=args.seed + 1,
            pipeline=args.pipeline, zipf=args.zipf,
        )
        problems += _burst_problems(report2, "burst 2 (worker killed)",
                                    args.requests)

        restarts = 0
        with ServiceClient("127.0.0.1", thread.port, timeout=30.0) as client:
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                snap = client.metrics()
                restarts = snap["counters"].get("worker_restarts", 0)
                if restarts >= 1:
                    break
                time.sleep(0.2)
        if restarts < 1:
            problems.append("killed worker was never restarted")

        print(json.dumps({
            "workers": args.workers,
            "faults": os.environ.get("REPRO_FAULTS", ""),
            "burst_1": report.to_json(),
            "burst_2_after_kill": report2.to_json(),
            "worker_restarts": restarts,
        }, indent=2))

    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    print(
        f"service scale smoke: {args.workers} workers, "
        f"2x{args.requests} verified requests, worker kill degraded "
        f"(failover + {restarts} restart), nothing lost"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
