#!/usr/bin/env python
"""CI smoke for the streaming recolor verb: seeded deltas, faults, verify.

Starts an in-process coloring service (which inherits ``REPRO_FAULTS`` from
the environment, so CI runs the whole stream under a seeded fault plan with
``service.recolor`` error injections), seeds a few recolor sessions, and
streams a deterministic sequence of sparse weight deltas through the
``recolor`` verb.  Because every delta carries *absolute* new weights and
the server injects faults before touching session state, an errored delta
is simply re-sent — idempotent by construction.  Typed ``unknown-session``
answers (probed explicitly, and possible mid-stream after an eviction) are
recovered from via the client's mirror re-seed, never by reconnecting.

At the end, each session's client mirror — weights *and* starts, as
maintained from the server's changed-cells answers — must match a cold
in-process full recolor of the final weights bit-for-bit.

Exit status 0 = every delta landed and every final coloring matches the
cold recolor, 1 = a lost delta or a divergence, 2 = usage.  Run from the
repo root::

    REPRO_FAULTS='seed=11;service.recolor:error=0.3,max=5' \\
        PYTHONPATH=src python tools/recolor_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", default="48x48",
                        help="session grid shape, e.g. 48x48 or 12x12x12")
    parser.add_argument("--algorithm", default="GLF")
    parser.add_argument("--sessions", type=int, default=2)
    parser.add_argument("--deltas", type=int, default=40,
                        help="sparse deltas streamed across the sessions")
    parser.add_argument("--cells", type=int, default=4,
                        help="cells rewritten per delta")
    parser.add_argument("--attempts", type=int, default=8,
                        help="send attempts per delta before giving up")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv[1:])

    try:
        shape = tuple(int(d) for d in args.shape.lower().split("x"))
        if len(shape) not in (2, 3) or any(d < 2 for d in shape):
            raise ValueError
    except ValueError:
        print(f"error: bad --shape {args.shape!r}", file=sys.stderr)
        return 2

    from repro.incremental.engine import full_recolor
    from repro.resilience import RetryPolicy
    from repro.service.client import ServiceClient
    from repro.service.server import ServerConfig, ServerThread

    rng = np.random.default_rng(args.seed)
    n = int(np.prod(shape))
    cells = max(1, min(args.cells, n))
    problems: list[str] = []
    retried = 0
    unknown_recoveries = 0

    config = ServerConfig(port=0, compute_threads=1, default_timeout=30.0)
    with ServerThread(config) as thread:
        client = ServiceClient(
            "127.0.0.1", thread.port, timeout=30.0,
            retry=RetryPolicy(retries=4), retry_seed=args.seed,
        )
        with client:
            # The typed-error probe: a delta for a session that was never
            # seeded must come back as a structured invalid answer on the
            # live connection — the same socket then seeds and streams.
            probe = client.recolor_delta("never-seeded", [0], [1],
                                         reseed=False)
            if not probe.unknown_session:
                problems.append(
                    f"probe: expected a typed unknown-session answer, got "
                    f"{probe.status!r} (code {probe.code!r})"
                )

            names = [f"smoke-s{i}" for i in range(args.sessions)]
            for name in names:
                weights = rng.integers(1, 101, size=shape, dtype=np.int64)
                for attempt in range(args.attempts):
                    response = client.recolor_open(
                        name, weights, args.algorithm,
                        request_id=f"{name}/seed/{attempt}",
                    )
                    if response.ok:
                        break
                    retried += 1
                else:
                    problems.append(f"{name}: seed never accepted")

            landed = 0
            for step in range(args.deltas):
                name = names[step % len(names)]
                idx = rng.choice(n, size=cells, replace=False)
                vals = rng.integers(1, 101, size=cells)
                for attempt in range(args.attempts):
                    response = client.recolor_delta(
                        name, idx, vals,
                        request_id=f"{name}/d{step}/{attempt}",
                    )
                    if response.ok:
                        landed += 1
                        break
                    if response.unknown_session:
                        unknown_recoveries += 1
                    retried += 1
                else:
                    problems.append(
                        f"{name} delta {step}: no ok answer in "
                        f"{args.attempts} attempts "
                        f"(last: {response.status}: {response.error})"
                    )

            divergences = 0
            for name in names:
                state = client.recolor_state(name)
                if state is None:
                    divergences += 1
                    problems.append(f"{name}: no client mirror")
                    continue
                weights, starts = state
                cold = full_recolor(weights, args.algorithm)
                if not np.array_equal(starts, cold):
                    divergences += 1
                    problems.append(
                        f"{name}: streamed coloring diverged from cold "
                        f"full recolor on "
                        f"{int(np.count_nonzero(starts != cold))} cells"
                    )

            snap = client.metrics()
            print(json.dumps({
                "shape": list(shape),
                "algorithm": args.algorithm,
                "faults": os.environ.get("REPRO_FAULTS", ""),
                "sessions": args.sessions,
                "deltas_landed": landed,
                "deltas_requested": args.deltas,
                "retries": retried,
                "unknown_session_answers": unknown_recoveries,
                "divergences": divergences,
                "server_sessions": snap.get("sessions", {}),
                "recolor_counters": {
                    k: v for k, v in snap.get("counters", {}).items()
                    if k.startswith("recolor_")
                },
            }, indent=2))

    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    print(
        f"recolor smoke: {args.sessions} sessions x {shape}, "
        f"{landed}/{args.deltas} deltas landed ({retried} retried under "
        f"faults), final colorings bit-identical to cold recolor"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
