"""Tests for balanced rectilinear partitioning."""

import itertools

import numpy as np
import pytest

from repro.data.partition import (
    balance_cuts_1d,
    balanced_rectilinear_instance,
    part_loads,
    uniform_rectilinear_instance,
)
from repro.data.synthetic import dengue_like


def brute_force_best_cap(counts, parts, min_slots):
    """Exhaustive minimum over all cut vectors (small inputs only)."""
    slots = len(counts)
    prefix = np.concatenate([[0], np.cumsum(counts)])
    best = None
    positions = range(min_slots, slots - min_slots + 1)
    for interior in itertools.combinations(positions, parts - 1):
        cuts = [0, *interior, slots]
        if any(b - a < min_slots for a, b in zip(cuts, cuts[1:])):
            continue
        cap = max(prefix[b] - prefix[a] for a, b in zip(cuts, cuts[1:]))
        if best is None or cap < best:
            best = cap
    return best


class TestBalanceCuts1D:
    def test_uniform_counts_equal_parts(self):
        cuts = balance_cuts_1d(np.ones(12, dtype=int), 4)
        assert cuts.tolist() == [0, 3, 6, 9, 12]

    def test_loads_sum_to_total(self):
        counts = np.array([5, 1, 1, 1, 8, 1, 1, 1, 1, 1])
        cuts = balance_cuts_1d(counts, 3)
        loads = part_loads(counts, cuts)
        assert loads.sum() == counts.sum()
        assert len(loads) == 3

    def test_min_slots_respected(self):
        counts = np.array([100, 0, 0, 0, 0, 0, 0, 0])
        cuts = balance_cuts_1d(counts, 2, min_slots=3)
        widths = np.diff(cuts)
        assert (widths >= 3).all()

    @pytest.mark.parametrize("seed", range(6))
    def test_optimal_vs_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 20, size=10)
        for parts, min_slots in ((2, 1), (3, 2), (4, 2)):
            if parts * min_slots > len(counts):
                continue
            cuts = balance_cuts_1d(counts, parts, min_slots=min_slots)
            cap = int(part_loads(counts, cuts).max())
            assert cap == brute_force_best_cap(counts, parts, min_slots)

    def test_infeasible_widths_rejected(self):
        with pytest.raises(ValueError, match="do not fit"):
            balance_cuts_1d(np.ones(5, dtype=int), 3, min_slots=2)

    def test_single_part(self):
        counts = np.arange(6)
        cuts = balance_cuts_1d(counts, 1)
        assert cuts.tolist() == [0, 6]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            balance_cuts_1d(np.ones(4, dtype=int), 0)
        with pytest.raises(ValueError):
            balance_cuts_1d(np.ones(4, dtype=int), 2, min_slots=0)


class TestBalancedInstances:
    @pytest.fixture(scope="class")
    def dataset(self):
        return dengue_like(num_points=1200)

    def test_2d_instance(self, dataset):
        bw = dataset.axis_length(0) / 32
        inst = balanced_rectilinear_instance(
            dataset, axes=(0, 1), parts=(6, 5), bandwidths=(bw, bw)
        )
        assert inst.is_2d
        assert inst.geometry.shape == (6, 5)
        assert inst.total_weight == dataset.num_points
        assert inst.metadata["partition"] == "balanced-rectilinear"

    def test_3d_instance(self, dataset):
        bw_s = dataset.axis_length(0) / 16
        bw_t = dataset.axis_length(2) / 16
        inst = balanced_rectilinear_instance(
            dataset, axes=(0, 1, 2), parts=(4, 3, 5), bandwidths=(bw_s, bw_s, bw_t)
        )
        assert inst.is_3d
        assert inst.total_weight == dataset.num_points

    def test_bandwidth_rule_enforced(self, dataset):
        big_bw = dataset.axis_length(0) / 4
        with pytest.raises(ValueError, match="do not fit"):
            balanced_rectilinear_instance(
                dataset, axes=(0, 1), parts=(8, 8), bandwidths=(big_bw, big_bw)
            )

    def test_cells_respect_min_width(self, dataset):
        bw = dataset.axis_length(0) / 40
        inst = balanced_rectilinear_instance(
            dataset, axes=(0, 1), parts=(8, 6), bandwidths=(bw, bw)
        )
        for edges in inst.metadata["cut_edges"]:
            widths = np.diff(edges)
            assert (widths >= 2 * bw - 1e-9).all()

    def test_balanced_no_worse_clique_bound(self, dataset):
        """The point of balancing: the K4 bound doesn't increase, and on
        clustered data it strictly improves."""
        from repro.core.bounds import clique_block_bound

        bw = dataset.axis_length(0) / 40
        parts = (8, 6)
        balanced = balanced_rectilinear_instance(
            dataset, axes=(0, 1), parts=parts, bandwidths=(bw, bw)
        )
        uniform = uniform_rectilinear_instance(dataset, axes=(0, 1), parts=parts)
        assert clique_block_bound(balanced) < clique_block_bound(uniform)

    def test_uniform_counterpart_matches_voxelize(self, dataset):
        from repro.data.voxelize import voxel_counts_2d

        uniform = uniform_rectilinear_instance(dataset, axes=(0, 1), parts=(4, 4))
        reference = voxel_counts_2d(dataset, "xy", (4, 4))
        assert np.array_equal(uniform.weight_grid(), reference)

    def test_colorable_end_to_end(self, dataset):
        from repro.core.algorithms.registry import color_with

        bw = dataset.axis_length(0) / 32
        inst = balanced_rectilinear_instance(
            dataset, axes=(0, 1), parts=(6, 5), bandwidths=(bw, bw)
        )
        assert color_with(inst, "BDP").is_valid()

    def test_misaligned_args(self, dataset):
        with pytest.raises(ValueError, match="align"):
            balanced_rectilinear_instance(
                dataset, axes=(0, 1), parts=(2, 2, 2), bandwidths=(1.0, 1.0)
            )
