"""Tests for the real-data CSV loader."""

import numpy as np
import pytest

from repro.data.loader import from_arrays, load_directory, load_events_csv


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "events.csv"
    path.write_text("x,y,t\n1.0,2.0,3.0\n4.0,5.0,6.0\n7.0,8.0,9.0\n")
    return path


class TestFromArrays:
    def test_basic(self):
        ds = from_arrays("d", [0.0, 1.0], [0.0, 2.0], [0.0, 3.0])
        assert ds.num_points == 2
        # Extent padded around the bounding box.
        assert ds.extent[0, 0] < 0.0 < 1.0 < ds.extent[0, 1]

    def test_explicit_extent(self):
        extent = np.array([[0.0, 10.0]] * 3)
        ds = from_arrays("d", [5.0], [5.0], [5.0], extent=extent)
        assert np.array_equal(ds.extent, extent)

    def test_degenerate_axis_padded(self):
        ds = from_arrays("d", [1.0, 1.0], [0.0, 1.0], [0.0, 1.0])
        assert ds.extent[0, 1] > ds.extent[0, 0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no events"):
            from_arrays("d", [], [], [])


class TestLoadCSV:
    def test_loads_rows(self, csv_file):
        ds = load_events_csv(csv_file)
        assert ds.num_points == 3
        assert ds.name == "events"
        assert np.allclose(ds.points[1], [4.0, 5.0, 6.0])

    def test_custom_columns(self, tmp_path):
        path = tmp_path / "latlon.csv"
        path.write_text("lon;lat;day\n-80.1;35.2;10\n-80.3;35.4;12\n")
        ds = load_events_csv(
            path, x_column="lon", y_column="lat", t_column="day", delimiter=";"
        )
        assert ds.num_points == 2

    def test_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_events_csv(path)

    def test_bad_value_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,t\n1,2,3\noops,2,3\n")
        with pytest.raises(ValueError, match="bad.csv:3"):
            load_events_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x,y,t\n")
        with pytest.raises(ValueError, match="no event rows"):
            load_events_csv(path)

    def test_pipeline_integration(self, csv_file):
        """A loaded dataset runs through the whole experiment pipeline."""
        from repro.core.algorithms.registry import color_with
        from repro.data.voxelize import voxel_counts_2d
        from repro.core.problem import IVCInstance

        ds = load_events_csv(csv_file)
        grid = voxel_counts_2d(ds, "xy", (4, 4))
        assert grid.sum() == 3
        coloring = color_with(IVCInstance.from_grid_2d(grid), "BDP")
        assert coloring.is_valid()


class TestLoadDirectory:
    def test_loads_all(self, tmp_path):
        for i in range(2):
            (tmp_path / f"ds{i}.csv").write_text("x,y,t\n1,2,3\n")
        datasets = load_directory(tmp_path)
        assert [d.name for d in datasets] == ["ds0", "ds1"]

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ValueError, match="no files"):
            load_directory(tmp_path)
