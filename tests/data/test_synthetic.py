"""Tests for the synthetic dataset generators and their regimes."""

import numpy as np

from repro.data.synthetic import (
    US_BOX,
    dengue_like,
    fluanimal_like,
    pollen_like,
    pollenus_like,
    standard_datasets,
)
from repro.data.voxelize import voxel_counts_3d


class TestDeterminism:
    def test_same_seed_same_points(self):
        a = dengue_like(seed=1)
        b = dengue_like(seed=1)
        assert np.array_equal(a.points, b.points)

    def test_different_seed_differs(self):
        assert not np.array_equal(dengue_like(seed=1).points, dengue_like(seed=2).points)

    def test_all_generators_reproducible(self):
        for gen in (dengue_like, fluanimal_like, pollen_like, pollenus_like):
            assert np.array_equal(gen().points, gen().points)


class TestShapes:
    def test_point_counts(self):
        assert dengue_like(num_points=123).num_points == 123
        assert fluanimal_like(num_points=77).num_points == 77
        assert pollen_like(num_points=500).num_points == 500

    def test_points_inside_extents(self):
        for gen in (dengue_like, fluanimal_like, pollen_like, pollenus_like):
            ds = gen()
            assert (ds.points >= ds.extent[:, 0]).all()
            assert (ds.points <= ds.extent[:, 1]).all()

    def test_pollenus_extent_is_us_box(self):
        assert np.array_equal(pollenus_like().extent, US_BOX)

    def test_standard_datasets_names(self):
        names = [d.name for d in standard_datasets(scale=0.05)]
        assert names == ["Dengue", "FluAnimal", "Pollen", "PollenUS"]

    def test_scale_multiplies_counts(self):
        small = standard_datasets(scale=0.1)
        large = standard_datasets(scale=0.5)
        for s, l in zip(small, large):
            assert s.num_points < l.num_points


class TestRegimes:
    """The qualitative weight regimes the substitution argument relies on."""

    def _occupancy(self, ds, dims=(8, 8, 8)) -> float:
        counts = voxel_counts_3d(ds, dims)
        return float((counts > 0).mean())

    def test_fluanimal_very_sparse(self):
        # The paper attributes FluAnimal's distinct ranking to sparsity:
        # most cells must be empty, and emptier than Dengue's.
        flu = self._occupancy(fluanimal_like())
        assert flu < 0.25
        assert flu < self._occupancy(dengue_like())

    def test_pollen_heavy_tailed(self):
        counts = voxel_counts_3d(pollen_like(), (8, 8, 8)).ravel()
        positive = counts[counts > 0]
        # The top cell is several times heavier than the median occupied one
        # (city clusters over a diffuse background).
        assert positive.max() > 5 * np.median(positive)

    def test_dengue_clustered(self):
        # The top 10% of cells carry well over their proportional share.
        counts = np.sort(voxel_counts_3d(dengue_like(), (8, 8, 8)).ravel())
        top_decile = counts[-len(counts) // 10 :].sum()
        assert top_decile > 2 * 0.1 * counts.sum()

    def test_fluanimal_spikier_than_pollen(self):
        # FluAnimal's occupied cells are far more skewed than Pollen's —
        # the regime contrast behind the paper's per-dataset anomalies.
        def skew(ds):
            c = voxel_counts_3d(ds, (8, 8, 8)).ravel()
            pos = c[c > 0]
            return float(pos.max() / np.median(pos))

        assert skew(fluanimal_like()) > 2 * skew(pollen_like())
