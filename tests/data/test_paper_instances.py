"""Certify the Figure 2 / Figure 3 instances against the exact solvers."""

import numpy as np

from repro.core.bounds import (
    clique_block_bound,
    maxpair_bound,
    odd_cycle_bound,
    odd_cycle_optimum,
)
from repro.core.exact.branch_and_bound import solve_exact
from repro.data.paper_instances import (
    FIGURE2_CLIQUE_BOUND,
    FIGURE2_OPTIMUM,
    FIGURE2_WEIGHTS,
    FIGURE3_BOUNDS,
    FIGURE3_OPTIMUM,
    figure2_cycle_graph,
    figure2_odd_cycle,
    figure3_two_cycles,
)


class TestFigure2:
    def test_cycle_is_induced(self):
        # The positive-weight conflict graph is exactly C7 — each positive
        # vertex has exactly two positive neighbors.
        inst = figure2_odd_cycle()
        positive = np.flatnonzero(inst.weights > 0)
        pos = set(positive.tolist())
        for v in positive:
            nbs = [int(u) for u in inst.graph.neighbors(int(v)) if int(u) in pos]
            assert len(nbs) == 2

    def test_certified_bounds(self):
        inst = figure2_odd_cycle()
        assert clique_block_bound(inst) == FIGURE2_CLIQUE_BOUND == 25
        assert odd_cycle_bound(inst, max_len=7) == FIGURE2_OPTIMUM == 30

    def test_optimum_exceeds_clique_bound(self):
        inst = figure2_odd_cycle()
        opt = solve_exact(inst)
        assert opt.maxcolor == FIGURE2_OPTIMUM
        assert opt.maxcolor > clique_block_bound(inst)

    def test_cycle_graph_matches_theorem(self):
        inst = figure2_cycle_graph()
        assert solve_exact(inst).maxcolor == odd_cycle_optimum(FIGURE2_WEIGHTS)


class TestFigure3:
    def test_bounds_evaluate_to_14(self):
        inst = figure3_two_cycles()
        assert maxpair_bound(inst) == 13
        assert odd_cycle_bound(inst, max_len=5) == FIGURE3_BOUNDS == 14

    def test_optimum_strictly_exceeds_bounds(self):
        inst = figure3_two_cycles()
        opt = solve_exact(inst)
        assert opt.maxcolor == FIGURE3_OPTIMUM == 16
        assert opt.maxcolor > FIGURE3_BOUNDS

    def test_milp_agrees(self):
        from repro.core.exact.milp import solve_milp

        inst = figure3_two_cycles()
        res = solve_milp(inst, time_limit=60.0)
        assert res.proven_optimal and res.maxcolor == FIGURE3_OPTIMUM

    def test_structure(self):
        inst = figure3_two_cycles()
        assert inst.num_vertices == 10
        assert inst.num_edges == 12  # two C5s plus two cross edges
