"""Tests for instance/coloring persistence."""

import numpy as np
import pytest

from repro.core.algorithms.registry import color_with
from repro.data.io import load_coloring, load_instance, save_coloring, save_instance
from repro.core.problem import IVCInstance
from repro.stencil.generic import cycle_graph


class TestInstanceRoundtrip:
    def test_2d(self, tmp_path, small_2d):
        path = tmp_path / "inst.npz"
        save_instance(small_2d, path)
        back = load_instance(path)
        assert back.is_2d
        assert np.array_equal(back.weights, small_2d.weights)
        assert back.geometry.shape == small_2d.geometry.shape
        assert back.name == small_2d.name

    def test_3d(self, tmp_path, small_3d):
        path = tmp_path / "inst.npz"
        save_instance(small_3d, path)
        back = load_instance(path)
        assert back.is_3d
        assert np.array_equal(back.weights, small_3d.weights)

    def test_metadata_preserved(self, tmp_path):
        inst = IVCInstance.from_grid_2d(
            np.ones((2, 2), dtype=int), name="x", metadata={"plane": "xy", "k": 3}
        )
        path = tmp_path / "inst.npz"
        save_instance(inst, path)
        back = load_instance(path)
        assert back.metadata == {"plane": "xy", "k": 3}

    def test_generic_graph(self, tmp_path):
        inst = IVCInstance.from_graph(cycle_graph(5), [1, 2, 3, 4, 5], name="c5")
        path = tmp_path / "inst.npz"
        save_instance(inst, path)
        back = load_instance(path)
        assert back.geometry is None
        assert back.num_edges == 5
        assert np.array_equal(back.weights, inst.weights)


class TestColoringRoundtrip:
    def test_stencil_coloring(self, tmp_path, small_2d):
        coloring = color_with(small_2d, "BDP")
        path = tmp_path / "starts.npy"
        save_coloring(coloring, path)
        back = load_coloring(small_2d, path)
        assert np.array_equal(back.starts, coloring.starts)
        assert back.is_valid()
        # Grid-shaped on disk.
        assert np.load(path).shape == small_2d.geometry.shape

    def test_generic_coloring(self, tmp_path):
        inst = IVCInstance.from_graph(cycle_graph(4), [1, 1, 1, 1])
        coloring = color_with(inst, "GLF")
        path = tmp_path / "starts.npy"
        save_coloring(coloring, path)
        back = load_coloring(inst, path, algorithm="reloaded")
        assert back.algorithm == "reloaded"
        assert np.array_equal(back.starts, coloring.starts)
