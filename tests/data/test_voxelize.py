"""Tests for voxelization and the dimension sweep."""

import numpy as np
import pytest

from repro.data.events import PointDataset
from repro.data.voxelize import (
    candidate_dims,
    density_ascii,
    max_dim_for_bandwidth,
    project_points,
    voxel_counts_2d,
    voxel_counts_3d,
)


@pytest.fixture
def grid_dataset():
    # 4 points in known cells of a [0,10]^3 cube.
    pts = np.array(
        [[0.5, 0.5, 0.5], [0.5, 0.5, 0.6], [9.5, 0.5, 0.5], [9.9, 9.9, 9.9]]
    )
    extent = np.array([[0.0, 10.0], [0.0, 10.0], [0.0, 10.0]])
    return PointDataset("g", pts, extent)


class TestMaxDim:
    def test_basic(self):
        assert max_dim_for_bandwidth(10.0, 1.0) == 5
        assert max_dim_for_bandwidth(10.0, 0.5) == 10

    def test_floors(self):
        assert max_dim_for_bandwidth(10.0, 1.6) == 3

    def test_at_least_one(self):
        assert max_dim_for_bandwidth(1.0, 10.0) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            max_dim_for_bandwidth(10.0, 0.0)
        with pytest.raises(ValueError):
            max_dim_for_bandwidth(0.0, 1.0)


class TestCandidateDims:
    def test_powers_plus_max(self):
        assert candidate_dims(10) == [2, 4, 8, 10]

    def test_exact_power(self):
        assert candidate_dims(8) == [2, 4, 8]

    def test_below_two_empty(self):
        assert candidate_dims(1) == []

    def test_cap(self):
        assert candidate_dims(100, cap=16) == [2, 4, 8, 16]

    def test_three(self):
        assert candidate_dims(3) == [2, 3]


class TestProjection:
    def test_planes(self, grid_dataset):
        for plane, cols in (("xy", (0, 1)), ("xt", (0, 2)), ("yt", (1, 2))):
            pts, ext = project_points(grid_dataset, plane)
            assert pts.shape == (4, 2)
            assert np.array_equal(pts, grid_dataset.points[:, list(cols)])
            assert ext.shape == (2, 2)

    def test_unknown_plane(self, grid_dataset):
        with pytest.raises(ValueError, match="unknown plane"):
            project_points(grid_dataset, "zz")


class TestCounts:
    def test_3d_total(self, grid_dataset):
        counts = voxel_counts_3d(grid_dataset, (5, 5, 5))
        assert counts.sum() == 4
        assert counts[0, 0, 0] == 2
        assert counts[4, 0, 0] == 1
        assert counts[4, 4, 4] == 1

    def test_2d_projection_counts(self, grid_dataset):
        counts = voxel_counts_2d(grid_dataset, "xy", (2, 2))
        assert counts.sum() == 4
        assert counts[0, 0] == 2
        assert counts[1, 0] == 1
        assert counts[1, 1] == 1

    def test_boundary_points_clipped_inside(self):
        pts = np.array([[10.0, 10.0, 10.0]])
        ds = PointDataset("b", pts, np.array([[0.0, 10.0]] * 3))
        counts = voxel_counts_3d(ds, (4, 4, 4))
        assert counts[3, 3, 3] == 1

    def test_empty_dataset(self):
        ds = PointDataset("e", np.empty((0, 3)), np.array([[0.0, 1.0]] * 3))
        assert voxel_counts_3d(ds, (3, 3, 3)).sum() == 0

    def test_dims_validation(self, grid_dataset):
        with pytest.raises(ValueError):
            voxel_counts_3d(grid_dataset, (2, 2))
        with pytest.raises(ValueError):
            voxel_counts_2d(grid_dataset, "xy", (2, 2, 2))


class TestAscii:
    def test_renders(self):
        grid = np.zeros((8, 4), dtype=int)
        grid[0, 0] = 10
        art = density_ascii(grid)
        lines = art.split("\n")
        assert len(lines) == 4
        assert lines[-1][0] == "@"  # the dense cell, bottom row printed last

    def test_all_zero(self):
        art = density_ascii(np.zeros((4, 3), dtype=int))
        assert set(art) <= {" ", "\n"}

    def test_downsamples_wide_grids(self):
        art = density_ascii(np.ones((200, 2), dtype=int), width=50)
        assert max(len(line) for line in art.split("\n")) <= 100

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            density_ascii(np.zeros((2, 2, 2)))
