"""Tests for the point-event dataset container."""

import numpy as np
import pytest

from repro.data.events import PointDataset


def make(points, extent=None):
    if extent is None:
        extent = [[0, 10], [0, 10], [0, 10]]
    return PointDataset("t", np.asarray(points, dtype=float), np.asarray(extent, float))


class TestValidation:
    def test_basic(self):
        ds = make([[1, 2, 3], [4, 5, 6]])
        assert ds.num_points == 2

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(N, 3\)"):
            make([[1, 2], [3, 4]])

    def test_bad_extent_shape(self):
        with pytest.raises(ValueError, match=r"\(3, 2\)"):
            make([[1, 2, 3]], extent=[[0, 10], [0, 10]])

    def test_degenerate_extent(self):
        with pytest.raises(ValueError, match="lo must be"):
            make([[0, 0, 0]], extent=[[0, 0], [0, 10], [0, 10]])

    def test_points_outside_extent(self):
        with pytest.raises(ValueError, match="outside"):
            make([[11, 2, 3]])

    def test_empty_dataset_ok(self):
        ds = make(np.empty((0, 3)))
        assert ds.num_points == 0


class TestOperations:
    def test_axis_length(self):
        ds = make([[1, 2, 3]], extent=[[0, 4], [0, 8], [2, 12]])
        assert ds.axis_length(0) == 4
        assert ds.axis_length(2) == 10

    def test_restrict(self):
        ds = make([[1, 1, 1], [9, 9, 9], [5, 5, 5]])
        box = np.array([[0, 6], [0, 6], [0, 6]], dtype=float)
        sub = ds.restrict(box)
        assert sub.num_points == 2
        assert sub.name == "t-restricted"
        assert np.array_equal(sub.extent, box)

    def test_restrict_custom_name(self):
        ds = make([[1, 1, 1]])
        sub = ds.restrict(np.array([[0, 2], [0, 2], [0, 2]]), name="sub")
        assert sub.name == "sub"
