"""Tests for the experiment-suite construction."""

import numpy as np
import pytest

from repro.data.instances import (
    DEFAULT_BANDWIDTH_FRACTIONS,
    SuiteConfig,
    build_suite_2d,
    build_suite_3d,
)
from repro.data.synthetic import standard_datasets


@pytest.fixture(scope="module")
def datasets():
    return standard_datasets(scale=0.05)


class TestSuite2D:
    def test_builds_instances(self, datasets):
        suite = build_suite_2d(datasets, SuiteConfig(dim_cap=4, max_cells=64))
        assert len(suite) > 0
        for inst in suite:
            assert inst.is_2d
            assert inst.num_vertices <= 64

    def test_metadata_complete(self, datasets):
        suite = build_suite_2d(datasets, SuiteConfig(dim_cap=4, max_cells=64))
        for inst in suite:
            assert inst.metadata["dataset"] in {"Dengue", "FluAnimal", "Pollen", "PollenUS"}
            assert inst.metadata["plane"] in {"xy", "xt", "yt"}
            assert inst.metadata["bandwidth"] in DEFAULT_BANDWIDTH_FRACTIONS
            assert inst.metadata["dims"] == inst.geometry.shape

    def test_covers_all_planes_and_datasets(self, datasets):
        suite = build_suite_2d(datasets, SuiteConfig(dim_cap=4, max_cells=64))
        planes = {inst.metadata["plane"] for inst in suite}
        names = {inst.metadata["dataset"] for inst in suite}
        assert planes == {"xy", "xt", "yt"}
        assert len(names) == 4

    def test_weights_are_point_counts(self, datasets):
        suite = build_suite_2d(datasets[:1], SuiteConfig(dim_cap=2, max_cells=16))
        ds = datasets[0]
        for inst in suite:
            if inst.metadata["plane"] == "xy":
                assert inst.total_weight == ds.num_points

    def test_dims_are_powers_or_max(self, datasets):
        suite = build_suite_2d(datasets, SuiteConfig(dim_cap=8, max_cells=128))
        for inst in suite:
            for d in inst.metadata["dims"]:
                assert d >= 2

    def test_names_unique(self, datasets):
        suite = build_suite_2d(datasets, SuiteConfig(dim_cap=4, max_cells=64))
        names = [inst.name for inst in suite]
        assert len(names) == len(set(names))


class TestSuite3D:
    def test_builds_instances(self, datasets):
        suite = build_suite_3d(datasets, SuiteConfig(dim_cap=4, max_cells=128))
        assert len(suite) > 0
        for inst in suite:
            assert inst.is_3d
            assert inst.num_vertices <= 128

    def test_total_weight_is_point_count(self, datasets):
        suite = build_suite_3d(datasets[:1], SuiteConfig(dim_cap=2, max_cells=8))
        for inst in suite:
            assert inst.total_weight == datasets[0].num_points

    def test_max_cells_respected(self, datasets):
        suite = build_suite_3d(datasets, SuiteConfig(dim_cap=8, max_cells=100))
        assert all(inst.num_vertices <= 100 for inst in suite)

    def test_custom_bandwidths(self, datasets):
        cfg = SuiteConfig(
            dim_cap=4, max_cells=64, bandwidth_fractions={"only": 1.0 / 8.0}
        )
        suite = build_suite_3d(datasets, cfg)
        assert all(inst.metadata["bandwidth"] == "only" for inst in suite)

    def test_default_datasets_used_when_none(self):
        # Smoke test the default path with a tiny config.
        suite = build_suite_3d(None, SuiteConfig(dim_cap=2, max_cells=8))
        assert len(suite) > 0
