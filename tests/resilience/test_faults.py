"""Unit tests for the fault-injection registry and the retry policy."""

import pytest

from repro.resilience import (
    FaultPlan,
    FaultPoint,
    InjectedFault,
    RetryPolicy,
    call_with_retries,
    clear_plan,
    install_plan,
    parse_fault_spec,
)
from repro.resilience.faults import active_plan, draw, inject


class TestFaultPlan:
    def test_draw_is_deterministic_in_seed_and_token(self):
        point = FaultPoint(site="engine.cell", kind="crash", probability=0.5)
        a = FaultPlan(seed=7, points=[point])
        b = FaultPlan(seed=7, points=[point])
        tokens = [f"cell-{i}#0" for i in range(200)]
        decisions_a = [a.draw("engine.cell", t) is not None for t in tokens]
        decisions_b = [b.draw("engine.cell", t) is not None for t in tokens]
        assert decisions_a == decisions_b
        # A different seed flips some decisions.
        c = FaultPlan(seed=8, points=[point])
        decisions_c = [c.draw("engine.cell", t) is not None for t in tokens]
        assert decisions_a != decisions_c

    def test_probability_roughly_honoured(self):
        plan = FaultPlan(
            seed=3, points=[FaultPoint(site="s", kind="error", probability=0.25)]
        )
        fired = sum(plan.draw("s", f"t{i}") is not None for i in range(2000))
        assert 350 < fired < 650  # ~500 expected

    def test_attempt_number_rolls_fresh_dice(self):
        plan = FaultPlan(
            seed=0, points=[FaultPoint(site="s", kind="crash", probability=0.5)]
        )
        outcomes = {
            attempt: plan.draw("s", f"cell-3#{attempt}") is not None
            for attempt in range(64)
        }
        assert True in outcomes.values() and False in outcomes.values()

    def test_max_fires_budget(self):
        plan = FaultPlan(
            seed=0,
            points=[FaultPoint(site="s", kind="error", probability=1.0, max_fires=3)],
        )
        fired = sum(plan.draw("s", f"t{i}") is not None for i in range(10))
        assert fired == 3
        assert plan.fire_counts() == {"s:error": 3}

    def test_site_mismatch_never_fires(self):
        plan = FaultPlan(
            seed=0, points=[FaultPoint(site="client.send", kind="drop")]
        )
        assert plan.draw("client.recv", "x") is None

    def test_fired_log_records_tokens(self):
        plan = FaultPlan(seed=0, points=[FaultPoint(site="s", kind="slow")])
        plan.draw("s", "alpha")
        assert plan.fired() == [("s", "slow", "alpha")]

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPoint(site="s", kind="slow", probability=1.5)
        with pytest.raises(ValueError):
            FaultPoint(site="s", kind="slow", delay=-1.0)


class TestParseFaultSpec:
    def test_full_grammar(self):
        plan = parse_fault_spec(
            "seed=11;engine.cell:crash=0.2;client.send:drop=0.1,max=5;"
            "service.compute:slow=1.0,delay=0.2"
        )
        assert plan.seed == 11
        assert len(plan.points) == 3
        crash, drop, slow = plan.points
        assert (crash.site, crash.kind, crash.probability) == (
            "engine.cell", "crash", 0.2,
        )
        assert drop.max_fires == 5
        assert slow.delay == 0.2

    def test_empty_segments_ignored(self):
        plan = parse_fault_spec(" seed=2 ; ; engine.cell:error=1.0 ;")
        assert plan.seed == 2 and len(plan.points) == 1

    def test_bad_segment_raises(self):
        with pytest.raises(ValueError):
            parse_fault_spec("engine.cell=0.5")
        with pytest.raises(ValueError):
            parse_fault_spec("engine.cell:crash=0.5,bogus=1")


class TestInstallation:
    def test_install_and_clear(self):
        plan = parse_fault_spec("s:error=1.0")
        install_plan(plan)
        assert active_plan() is plan
        clear_plan()
        assert active_plan() is None

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=4;s:error=1.0")
        clear_plan()  # forget any prior env parse
        plan = active_plan()
        assert plan is not None and plan.seed == 4
        clear_plan()

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=4;s:error=1.0")
        install_plan(None)
        assert active_plan() is None

    def test_no_plan_hooks_are_noops(self):
        assert draw("engine.cell", "x") is None
        assert inject("engine.cell", "x") is None


class TestInjectSemantics:
    def test_error_kind_raises_injected_fault(self):
        install_plan(FaultPlan(points=[FaultPoint(site="s", kind="error")]))
        with pytest.raises(InjectedFault):
            inject("s", "token")

    def test_slow_kind_sleeps_then_returns_point(self):
        install_plan(
            FaultPlan(points=[FaultPoint(site="s", kind="slow", delay=0.0)])
        )
        point = inject("s", "token")
        assert point is not None and point.kind == "slow"

    def test_unknown_kind_returned_to_caller(self):
        install_plan(FaultPlan(points=[FaultPoint(site="s", kind="corrupt")]))
        point = inject("s", "token")
        assert point is not None and point.kind == "corrupt"


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            retries=5, base_delay=0.1, max_delay=0.5, multiplier=2.0, jitter=0.0
        )
        delays = [policy.delay(a) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_below_full_delay(self):
        import random

        policy = RetryPolicy(retries=3, base_delay=0.1, jitter=0.5)
        rng = random.Random(0)
        for attempt in range(20):
            d = policy.delay(attempt % 3, rng)
            assert 0.0 < d <= policy.delay(attempt % 3)

    def test_call_with_retries_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionResetError("boom")
            return "ok"

        slept = []
        out = call_with_retries(
            flaky,
            RetryPolicy(retries=3, base_delay=0.01),
            retry_on=(ConnectionResetError,),
            sleep=slept.append,
        )
        assert out == "ok" and len(calls) == 3 and len(slept) == 2

    def test_call_with_retries_exhausts_budget(self):
        def always():
            raise ConnectionResetError("boom")

        with pytest.raises(ConnectionResetError):
            call_with_retries(
                always,
                RetryPolicy(retries=2, base_delay=0.0),
                retry_on=(ConnectionResetError,),
                sleep=lambda _s: None,
            )
