"""Shared chaos-test plumbing: every test leaves no fault plan behind."""

import pytest

from repro.resilience import clear_plan


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Chaos plans are process-global; clear before and after every test."""
    clear_plan()
    yield
    clear_plan()
