"""Chaos tests for the engine: worker crashes, retries, and resume.

The crash tests run a real ``ProcessPoolExecutor`` grid with an installed
``engine.cell:crash`` fault plan — workers genuinely die via ``os._exit`` —
and assert the supervised rerun loses no cells and produces colorings
bit-identical to a fault-free serial run.  The plan is installed in the
parent before the pool forks, so workers inherit it (Linux fork start
method); seeds below were chosen so the injected crashes converge within
the default retry budget.
"""

import pytest

from repro.engine import STATUS_ERROR, STATUS_OK, read_run_log, run_grid
from repro.engine.executor import GridResult
from repro.resilience import FaultPlan, FaultPoint, install_plan, parse_fault_spec
from tests.conftest import random_2d_instances

ALGOS = ["GLL", "GLF", "BDP"]


def _baseline(instances):
    """Fault-free ground truth, serial path."""
    return run_grid(instances, ALGOS, jobs=1)


class TestCrashRecovery:
    def test_grid_survives_worker_crashes_bit_identically(self):
        instances = random_2d_instances(count=8, seed=0)
        baseline = _baseline(instances)
        install_plan(parse_fault_spec("seed=11;engine.cell:crash=0.15"))
        result = run_grid(instances, ALGOS, jobs=2, chunk_size=3)
        assert isinstance(result, GridResult)
        assert len(result) == len(baseline)
        assert all(r.status == STATUS_OK for r in result)
        assert [r.maxcolor for r in result] == [r.maxcolor for r in baseline]
        # The plan must actually have bitten for this test to mean anything.
        assert result.pool_restarts >= 1
        assert result.cells_retried >= 1

    def test_poison_cell_isolated_neighbours_complete(self):
        # probability 1.0 + no retries: every first attempt crashes, so the
        # supervisor's blast-radius accounting is fully deterministic — one
        # pool lifetime, every cell charged exactly its own loss.
        instances = random_2d_instances(count=4, seed=1)
        install_plan(
            FaultPlan(points=[FaultPoint(site="engine.cell", kind="crash")])
        )
        result = run_grid(instances, ALGOS, jobs=2, max_cell_retries=0)
        assert all(r.status == STATUS_ERROR for r in result)
        assert all("worker crashed on every attempt (x1)" in r.error for r in result)
        assert result.pool_restarts == 1
        assert result.cells_retried == 0

    def test_injected_error_is_per_cell_not_pool(self):
        # error-kind faults raise inside the cell; the record machinery
        # isolates them without any pool restart.
        instances = random_2d_instances(count=4, seed=2)
        install_plan(parse_fault_spec("seed=5;engine.cell:error=1.0,max=2"))
        result = run_grid(instances, ALGOS, jobs=2, chunk_size=2)
        errored = [r for r in result if r.status == STATUS_ERROR]
        assert errored and all("InjectedFault" in r.error for r in errored)
        assert result.pool_restarts == 0

    def test_retry_budget_exhaustion_yields_crash_records(self):
        # A crash on every attempt of every token: the budget must run out
        # and produce error records rather than looping forever.
        instances = random_2d_instances(count=2, seed=3)
        install_plan(
            FaultPlan(points=[FaultPoint(site="engine.cell", kind="crash")])
        )
        result = run_grid(instances, ["GLL"], jobs=2, max_cell_retries=2)
        assert all(r.status == STATUS_ERROR for r in result)
        assert all("(x3)" in r.error for r in result)
        assert result.cells_retried == 2 * 2  # two cells, two extra attempts


class TestResume:
    def test_resume_runs_only_missing_cells(self, tmp_path):
        instances = random_2d_instances(count=6, seed=4)
        full_log = tmp_path / "full.jsonl"
        baseline = run_grid(instances, ALGOS, jobs=1, log_path=full_log)

        # Simulate a mid-run kill: keep only the first 7 completed cells.
        lines = full_log.read_text().splitlines(keepends=True)
        partial_log = tmp_path / "partial.jsonl"
        partial_log.write_text("".join(lines[:7]))

        resumed = run_grid(
            instances, ALGOS, jobs=1, resume_from=partial_log,
            log_path=tmp_path / "resumed.jsonl",
        )
        assert resumed.cells_resumed == 7
        assert [r.maxcolor for r in resumed] == [r.maxcolor for r in baseline]
        assert [r.status for r in resumed] == [r.status for r in baseline]
        # Only the re-executed cells hit the new log.
        rerun = list(read_run_log(tmp_path / "resumed.jsonl"))
        assert len(rerun) == len(baseline) - 7

    def test_resume_appends_to_same_log(self, tmp_path):
        instances = random_2d_instances(count=4, seed=5)
        log = tmp_path / "run.jsonl"
        run_grid(instances, ALGOS, jobs=1, log_path=log)
        lines = log.read_text().splitlines(keepends=True)
        log.write_text("".join(lines[:5]))

        run_grid(instances, ALGOS, jobs=1, resume_from=log, log_path=log)
        # The log now holds the 5 adopted cells plus each re-executed cell
        # exactly once — a complete grid again.
        records = list(read_run_log(log))
        assert len(records) == len(instances) * len(ALGOS)

    def test_error_cells_are_re_executed(self, tmp_path):
        instances = random_2d_instances(count=3, seed=6)
        log = tmp_path / "run.jsonl"
        # First run: every GLL cell errors (budget: exactly 3 fires).
        install_plan(parse_fault_spec("engine.cell:error=1.0,max=3"))
        first = run_grid(instances, ["GLL"], jobs=1, log_path=log)
        assert all(r.status == STATUS_ERROR for r in first)
        install_plan(None)

        resumed = run_grid(instances, ["GLL"], jobs=1, resume_from=log)
        assert resumed.cells_resumed == 0  # error cells never adopted
        assert all(r.status == STATUS_OK for r in resumed)

    def test_resume_ignores_mismatched_grid(self, tmp_path):
        from repro.core.problem import IVCInstance

        instances = random_2d_instances(count=3, seed=7)
        log = tmp_path / "run.jsonl"
        run_grid(instances, ["GLL"], jobs=1, log_path=log)
        # Same grids under different names at the same indices: adoption
        # must refuse every record rather than mismatch silently.
        renamed = [
            IVCInstance.from_grid_2d(inst.weight_grid(), name=f"other-{k}")
            for k, inst in enumerate(instances)
        ]
        resumed = run_grid(renamed, ["GLL"], jobs=1, resume_from=log)
        assert resumed.cells_resumed == 0
        assert all(r.status == STATUS_OK for r in resumed)


class TestSuitePlumbing:
    def test_run_suite_surfaces_supervision_counters(self, tmp_path):
        from repro.experiments import run_suite

        instances = random_2d_instances(count=4, seed=9)
        log = tmp_path / "suite.jsonl"
        first = run_suite(
            instances, algorithms=ALGOS, jobs=1, log_path=log, on_error="record"
        )
        assert first.pool_restarts == 0 and first.cells_resumed == 0

        lines = log.read_text().splitlines(keepends=True)
        log.write_text("".join(lines[:4]))
        second = run_suite(
            instances, algorithms=ALGOS, jobs=1, on_error="record",
            resume_from=log,
        )
        assert second.cells_resumed == 4
        assert [r.maxcolor for r in second.records] == [
            r.maxcolor for r in first.records
        ]
