"""Chaos tests for the service layer: dropped connections, compute faults,
spill corruption, drain under pressure, and reconnect-after-restart.

Server and clients share this process, so one installed :class:`FaultPlan`
drives both sides' hook sites at once — the same topology the CI
``chaos-smoke`` job runs through the CLI.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.resilience import (
    FaultPlan,
    FaultPoint,
    RetryPolicy,
    install_plan,
    parse_fault_spec,
)
from repro.service import (
    AsyncServiceClient,
    ResultCache,
    ServiceClient,
    ServiceConnectionError,
)
from repro.service.cache import CacheEntry
from repro.service.loadgen import build_workload, run_loadgen
from repro.service.server import ServerConfig, ServerThread

RETRY = RetryPolicy(retries=5, base_delay=0.005, max_delay=0.05)


class TestLoadgenUnderChaos:
    def test_chaos_run_is_lossless_and_exact(self, tmp_path):
        """The acceptance chaos run: drops + compute faults + spill
        corruption, yet zero lost requests and bit-identical colorings."""
        install_plan(parse_fault_spec(
            "seed=11;"
            "client.send:drop=0.1,max=6;"
            "client.recv:drop=0.05,max=4;"
            "service.compute:error=0.3,max=4;"
            "cache.spill.write:corrupt=1.0,max=3"
        ))
        config = ServerConfig(
            cache_size=2,  # tiny: forces evictions through the faulty spill
            spill_path=str(tmp_path / "spill.jsonl"),
            compute_threads=2,
        )
        with ServerThread(config) as thread:
            workload = build_workload(
                [(8, 8), (6, 6), (5, 7)], distinct=6, seed=3
            )
            report = run_loadgen(
                "127.0.0.1", thread.port, workload,
                requests=80, concurrency=4, verify=True, seed=3,
                retry=RETRY,
            )
            cache_stats = thread.service.cache.stats()
            metrics = thread.service.metrics.snapshot()

        assert report.requests == 80  # nothing lost
        assert report.ok == 80
        assert report.errors == 0
        assert report.connection_failures == 0
        assert report.divergences == 0  # bit-identical under chaos
        # Every fault family must actually have fired, and the hardening
        # must have engaged: transport retries and degraded computes.
        assert report.faults_fired.get("client.send:drop", 0) > 0
        assert report.faults_fired.get("service.compute:error", 0) > 0
        assert report.connection_retries > 0
        assert metrics["counters"].get("degraded_total", 0) > 0
        # Corrupt spill lines were written; reads degrade to misses and are
        # counted rather than silently skipped.
        assert report.faults_fired.get("cache.spill.write:corrupt", 0) > 0
        assert cache_stats["spill_read_errors"] >= 0  # surfaced in stats

    def test_connection_failures_counted_without_retry(self):
        """No retry policy: injected drops become counted lost requests,
        never hangs or unraised exceptions."""
        install_plan(parse_fault_spec("seed=2;client.send:drop=1.0,max=3"))
        with ServerThread(ServerConfig(cache_size=0)) as thread:
            workload = build_workload([(6, 6)], distinct=2, seed=1)
            report = run_loadgen(
                "127.0.0.1", thread.port, workload,
                requests=10, concurrency=2, seed=1, fetch_metrics=False,
            )
        assert report.requests == 10
        assert report.connection_failures == 3
        assert report.errors == report.connection_failures
        assert report.ok == 10 - 3


class TestDegradedMode:
    def test_compute_fault_degrades_not_fails(self):
        install_plan(parse_fault_spec("service.compute:error=1.0,max=1"))
        with ServerThread(ServerConfig(cache_size=0)) as thread:
            with ServiceClient("127.0.0.1", thread.port, timeout=10.0) as client:
                weights = np.arange(1, 26).reshape(5, 5)
                served = client.color(weights, "BDP")
                metrics = client.metrics()
        assert served.ok
        assert served.source == "degraded"
        assert metrics["counters"]["degraded_total"] == 1
        # Differential ground truth: degraded output is still exact.
        from repro.core.algorithms.registry import color_with
        from repro.core.problem import IVCInstance

        direct = color_with(IVCInstance.from_grid_2d(weights), "BDP")
        assert np.array_equal(
            served.starts, np.asarray(direct.starts).reshape(5, 5)
        )

    def test_pinned_fast_path_does_not_degrade(self):
        install_plan(parse_fault_spec("service.compute:error=1.0,max=1"))
        with ServerThread(ServerConfig(cache_size=0)) as thread:
            with ServiceClient("127.0.0.1", thread.port, timeout=10.0) as client:
                served = client.color(np.ones((4, 4), dtype=np.int64), "BDP",
                                      fast=True)
        assert served.status == "error"
        assert "InjectedFault" in served.error


class TestSpillCorruption:
    def test_corrupt_spill_reads_counted_and_degrade_to_miss(self, tmp_path):
        install_plan(
            FaultPlan(points=[FaultPoint(site="cache.spill.write", kind="corrupt")])
        )
        cache = ResultCache(capacity=1, spill_path=tmp_path / "spill.jsonl")
        entry = CacheEntry(starts=np.array([0, 2]), maxcolor=3, algorithm="BDP")
        cache.put("k1", entry)
        cache.put("k2", entry)  # evicts k1 through the corrupting spill
        assert cache.get("k1") is None  # damaged line reads as a miss
        stats = cache.stats()
        assert stats["spill_read_errors"] == 1
        assert stats["spilled"] == 1

    def test_load_spill_skips_torn_lines_and_counts(self, tmp_path):
        install_plan(parse_fault_spec("cache.spill.write:torn=1.0,max=1"))
        path = tmp_path / "spill.jsonl"
        cache = ResultCache(capacity=1, spill_path=path)
        entry = CacheEntry(starts=np.array([0, 2]), maxcolor=3, algorithm="BDP")
        cache.put("k1", entry)
        cache.put("k2", entry)  # spills k1 torn (fault budget: 1)
        cache.put("k3", entry)  # spills k2 intact
        cache.close()
        install_plan(None)

        warm = ResultCache(capacity=4, spill_path=path)
        indexed = warm.load_spill()
        # The torn k1 line also swallows the k2 line's framing? No: torn
        # truncates within one line, so k2's line is glued onto k1's — one
        # damaged record skipped, the rest of the file unreadable past it is
        # at most that merged line.
        assert warm.stats()["spill_load_skipped"] >= 1
        assert indexed + warm.stats()["spill_load_skipped"] >= 1


class TestDrainUnderPressure:
    def test_drain_deadline_answers_stragglers(self):
        """A wedged/slow compute must not hang stop(): queued requests are
        answered overloaded, in-flight ones timeout, within the budget."""
        install_plan(parse_fault_spec("service.compute:slow=1.0,delay=0.6"))
        config = ServerConfig(
            compute_threads=1, drain_timeout=0.2, batch_window=0.0,
            cache_size=0, default_timeout=30.0,
        )
        thread = ServerThread(config).start()

        async def pressure():
            clients = [
                AsyncServiceClient("127.0.0.1", thread.port, timeout=30.0)
                for _ in range(4)
            ]
            # Distinct shapes so each request is its own batch group.
            grids = [np.full((3 + i, 4), 5, dtype=np.int64) for i in range(4)]
            tasks = [
                asyncio.create_task(c.color(g, "GLL", request_id=f"r{i}"))
                for i, (c, g) in enumerate(zip(clients, grids))
            ]
            await asyncio.sleep(0.15)  # one computing, the rest queued
            t0 = time.monotonic()
            await asyncio.to_thread(thread.stop)
            stop_elapsed = time.monotonic() - t0
            responses = await asyncio.gather(*tasks)
            for c in clients:
                await c.close()
            return stop_elapsed, responses

        stop_elapsed, responses = asyncio.run(pressure())
        # stop() returned well under the wedged-compute serial time (2.4s
        # of injected sleeps through one thread) — the drain budget held.
        assert stop_elapsed < 2.0
        statuses = sorted(r.status for r in responses)
        assert all(s in ("ok", "overloaded", "timeout") for s in statuses)
        assert any(s != "ok" for s in statuses)  # pressure actually bit
        snapshot = thread.service.metrics.snapshot()
        assert snapshot["counters"].get("drain_expired", 0) == 1


class TestReconnectAfterRestart:
    def test_sync_client_survives_server_restart(self):
        first = ServerThread(ServerConfig(cache_size=0)).start()
        port = first.port
        client = ServiceClient(
            "127.0.0.1", port, timeout=5.0,
            retry=RetryPolicy(retries=8, base_delay=0.05, max_delay=0.2),
        )
        try:
            client.ping()
            baseline = client.color(np.ones((4, 4), dtype=np.int64), "BDP")
            assert baseline.ok
            first.stop()

            second = ServerThread(ServerConfig(cache_size=0, port=port)).start()
            try:
                again = client.color(np.ones((4, 4), dtype=np.int64), "BDP")
                assert again.ok
                assert client.retries_used >= 1
                assert np.array_equal(again.starts, baseline.starts)
            finally:
                second.stop()
        finally:
            client.close()

    def test_client_without_retry_raises_typed_error(self):
        thread = ServerThread(ServerConfig(cache_size=0)).start()
        port = thread.port
        client = ServiceClient("127.0.0.1", port, timeout=2.0)
        try:
            client.ping()
            thread.stop()
            with pytest.raises(ServiceConnectionError) as excinfo:
                client.color(np.ones((3, 3), dtype=np.int64), "BDP",
                             request_id="after-stop")
            assert excinfo.value.host == "127.0.0.1"
            assert excinfo.value.port == port
            assert excinfo.value.request_id == "after-stop"
        finally:
            client.close()
