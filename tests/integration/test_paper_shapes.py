"""Integration tests asserting the paper's qualitative results hold
end-to-end on miniature versions of the Section VI / VII experiments."""

import numpy as np
import pytest

from repro.analysis.stats import fraction_matching, mean_ratio_to
from repro.data.instances import SuiteConfig, build_suite_2d, build_suite_3d
from repro.data.synthetic import standard_datasets
from repro.experiments import run_suite


@pytest.fixture(scope="module")
def datasets():
    return standard_datasets(scale=0.3)


@pytest.fixture(scope="module")
def result_2d(datasets):
    suite = build_suite_2d(datasets, SuiteConfig(dim_cap=8, max_cells=256))
    return run_suite(suite)


@pytest.fixture(scope="module")
def result_3d(datasets):
    suite = build_suite_3d(datasets, SuiteConfig(dim_cap=8, max_cells=512))
    return run_suite(suite)


class TestSectionVIB:
    """2D: BDP near the clique bound and at the top of the profile."""

    def test_bdp_close_to_clique_bound(self, result_2d):
        ratio = mean_ratio_to(
            [float(v) for v in result_2d.maxcolors["BDP"]],
            [float(b) for b in result_2d.lower_bounds],
        )
        # The paper reports ~1.03x on its instances; allow slack on ours.
        assert ratio < 1.10

    def test_bdp_among_best_algorithms(self, result_2d):
        # BDP leads the profile in the paper; on our synthetic point-count
        # instances GLF/SGK are competitive, but BDP must stay in the top
        # group and clearly dominate BD and the geometric greedies.
        prof = result_2d.profile()
        aucs = {a: prof.auc(a) for a in prof.algorithms}
        ranked = sorted(aucs, key=aucs.get, reverse=True)
        assert "BDP" in ranked[:4]
        assert aucs["BDP"] > aucs["BD"]
        assert aucs["BDP"] > aucs["GLL"]
        assert aucs["BDP"] > aucs["GZO"]

    def test_bdp_improves_bd(self, result_2d):
        bd = np.array(result_2d.maxcolors["BD"], dtype=float)
        bdp = np.array(result_2d.maxcolors["BDP"], dtype=float)
        assert np.all(bdp <= bd)
        assert bdp.sum() < bd.sum()

    def test_many_provably_optimal_solutions(self, result_2d):
        best = [
            min(result_2d.maxcolors[a][i] for a in result_2d.algorithms)
            for i in range(result_2d.num_instances)
        ]
        share = fraction_matching(
            [float(b) for b in best], [float(b) for b in result_2d.lower_bounds]
        )
        assert share > 0.5  # the paper proves optimality for ~60%


class TestSectionVIC:
    """3D: GLF/SGK lead quality; SGK is the slowest; BDP mid-pack."""

    def test_glf_and_sgk_lead(self, result_3d):
        prof = result_3d.profile()
        aucs = {a: prof.auc(a) for a in prof.algorithms}
        ranked = sorted(aucs, key=aucs.get, reverse=True)
        assert set(ranked[:2]) & {"GLF", "SGK"}

    def test_glf_faster_than_sgk(self, result_3d):
        # The paper reports GLF 142% faster than SGK; the gap narrows at our
        # miniature sizes but the ordering must hold.
        assert sum(result_3d.times["GLF"]) < sum(result_3d.times["SGK"])

    def test_sgk_slowest_in_2d(self, result_2d):
        # SGK's 4!-permutation search makes it by far the slowest 2D solver.
        sgk = sum(result_2d.times["SGK"])
        for name in ("GLL", "GZO", "GLF", "GKF", "BD"):
            assert sgk > 2 * sum(result_2d.times[name])

    def test_bdp_not_dominant_in_3d(self, result_3d):
        prof = result_3d.profile()
        aucs = {a: prof.auc(a) for a in prof.algorithms}
        ranked = sorted(aucs, key=aucs.get, reverse=True)
        assert ranked[0] != "BDP"


class TestSectionVII:
    """STKDE: the critical path tracks maxcolor for first-fit colorings."""

    def test_colors_track_critical_path(self, datasets):
        from repro.core.algorithms.registry import color_with
        from repro.stkde.runtime import (
            critical_path_length,
            task_dag_from_coloring,
        )
        from repro.stkde.tasks import box_decomposition

        ds = datasets[0]
        problem = box_decomposition(
            ds, ds.axis_length(0) / 12, ds.axis_length(2) / 12, voxel_dims=(8, 8, 8)
        )
        inst = problem.instance
        costs = inst.weights.astype(float)
        # Pure first-fit colorings are "tight": the vertex reaching maxcolor
        # rests on a chain of touching intervals back to color 0, so the
        # weighted critical path equals maxcolor exactly — the mechanism the
        # paper's Section VII analysis relies on.  (BD/BDP are constructed,
        # not first-fit, so their maxcolor over-states their DAG depth.)
        for name in ("GLL", "GZO", "GLF", "GKF", "SGK"):
            coloring = color_with(inst, name)
            dag = task_dag_from_coloring(coloring)
            cp = critical_path_length(dag, costs)
            assert cp == pytest.approx(coloring.maxcolor), name

    def test_positive_colors_runtime_correlation(self, datasets):
        from repro.analysis.regression import linear_fit
        from repro.core.algorithms.registry import color_with
        from repro.stkde.runtime import default_costs, simulate_schedule
        from repro.stkde.tasks import box_decomposition

        # PollenUS-like config in the critical-path-bound regime.
        ds = datasets[3]
        problem = box_decomposition(
            ds, ds.axis_length(0) / 24, ds.axis_length(2) / 16, voxel_dims=(8, 8, 8)
        )
        inst = problem.instance
        costs = default_costs(inst, per_point=1.0, overhead=0.02)
        colors, times = [], []
        for name in ("GLL", "GZO", "GLF", "GKF", "SGK", "BDP"):
            coloring = color_with(inst, name)
            trace = simulate_schedule(coloring, num_workers=6, costs=costs)
            colors.append(float(coloring.maxcolor))
            times.append(trace.makespan)
        fit = linear_fit(colors, times)
        assert fit.rvalue > 0.3
