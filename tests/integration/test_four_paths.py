"""Differential test: the four call paths produce bit-identical colorings.

One weight grid per dimensionality, every applicable registry algorithm,
four routes to a coloring:

1. **direct** — ``color_with(..., fast=False)``: the reference loops;
2. **kernels** — ``color_with(..., fast=True)``: vectorized fast paths
   (automatic fallback to reference where no kernel is registered);
3. **engine** — ``run_grid(..., jobs=2, capture_starts=True)``: the
   supervised process pool, workers rebuilding contexts from the shipped
   ``RuntimeConfig``;
4. **service** — a live :class:`ServerThread` over sockets, with
   micro-batching and caching in between.

All four must agree start-for-start.  This is the acceptance gate for the
``repro.runtime`` refactor: threading an ExecutionContext through every
layer must not perturb a single coloring.
"""

import numpy as np
import pytest

from repro.core.algorithms.registry import REGISTRY, color_with
from repro.core.problem import IVCInstance
from repro.engine import run_grid
from repro.runtime.context import ExecutionContext
from repro.service.client import ServiceClient
from repro.service.server import ServerConfig, ServerThread


def _weights_2d():
    return np.random.default_rng(7).integers(1, 60, size=(12, 13), dtype=np.int64)


def _weights_3d():
    return np.random.default_rng(8).integers(1, 60, size=(5, 6, 7), dtype=np.int64)


CASES = [
    pytest.param(_weights_2d(), IVCInstance.from_grid_2d, id="2d"),
    pytest.param(_weights_3d(), IVCInstance.from_grid_3d, id="3d"),
]


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(
        port=0, max_batch=8, batch_window=0.001, queue_limit=128,
        cache_size=64, compute_threads=2, default_timeout=30.0,
    )
    with ServerThread(config) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(server):
    with ServiceClient("127.0.0.1", server.port, timeout=30.0) as c:
        yield c


@pytest.mark.parametrize("weights,from_grid", CASES)
def test_four_paths_bit_identical(weights, from_grid, client):
    instance = from_grid(weights)
    names = REGISTRY.select(instance, include_extensions=True)
    assert len(names) >= 7  # the paper's seven at minimum

    # Path 1 + 2: direct reference and kernel fast path, fresh contexts so
    # nothing leaks between them through shared substrate caches.
    reference = {
        name: color_with(
            instance, name, fast=False, context=ExecutionContext()
        ).starts
        for name in names
    }
    for name in names:
        kernel = color_with(instance, name, fast=True, context=ExecutionContext())
        assert np.array_equal(kernel.starts, reference[name]), (
            f"kernel path diverged for {name}"
        )

    # Path 3: the process-pool engine (workers rebuild their own contexts).
    records = run_grid(
        [instance], list(names), jobs=2, capture_starts=True,
        context=ExecutionContext(),
    )
    assert len(records) == len(names)
    for record in records:
        assert record.ok, (record.algorithm, record.error)
        assert record.starts is not None
        assert np.array_equal(np.asarray(record.starts), reference[record.algorithm]), (
            f"engine path diverged for {record.algorithm}"
        )

    # Path 4: the live service (batched, cached, over real sockets).
    for name in names:
        response = client.color(weights, name)
        assert response.ok, (name, response.error)
        assert np.array_equal(response.starts.ravel(), reference[name]), (
            f"service path diverged for {name}"
        )


@pytest.mark.parametrize("weights,from_grid", CASES)
def test_engine_serial_matches_parallel(weights, from_grid):
    """jobs=1 (in-process) and jobs=2 (pool) agree cell-for-cell."""
    instance = from_grid(weights)
    names = REGISTRY.select(instance, include_extensions=True)
    serial = run_grid(
        [instance], list(names), jobs=1, capture_starts=True,
        context=ExecutionContext(),
    )
    parallel = run_grid(
        [instance], list(names), jobs=2, capture_starts=True,
        context=ExecutionContext(),
    )
    by_alg = {r.algorithm: r for r in parallel}
    for record in serial:
        assert record.starts == by_alg[record.algorithm].starts, record.algorithm
        assert record.maxcolor == by_alg[record.algorithm].maxcolor
