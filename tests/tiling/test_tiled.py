"""End-to-end tiler tests: bit-identity to the monolithic GLL kernel,
output modes, resume, and failure surfacing."""

import numpy as np
import pytest

from repro.core.algorithms.registry import color_with
from repro.core.problem import IVCInstance
from repro.data import SyntheticWeightSource
from repro.runtime.config import TilingConfig
from repro.tiling import TilingError, color_tiled, read_tile_log


def _weights(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(1, 100, size=shape, dtype=np.int64)


def _monolithic(weights):
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name="mono")
    else:
        instance = IVCInstance.from_grid_3d(weights, name="mono")
    return color_with(instance, "GLL")


def _assert_identical(tiled, weights):
    mono = _monolithic(weights)
    assert tiled.maxcolor == mono.maxcolor
    np.testing.assert_array_equal(
        np.asarray(tiled.starts).ravel(), np.asarray(mono.starts).ravel()
    )


class TestBitIdentity:
    @pytest.mark.parametrize(
        "shape,tile_shape",
        [
            ((13, 9), (4, 4)),    # non-divisible
            ((16, 16), (8, 8)),   # exact division
            ((7, 7), (7, 7)),     # single tile
            ((9, 5), (1, 1)),     # tile smaller than the halo margin
            ((1, 8), (3, 3)),     # degenerate line
            ((6, 5, 4), (3, 3, 3)),
            ((4, 4, 4), (1, 1, 1)),
            ((5, 4, 3), (8, 8, 8)),  # single 3D tile
        ],
    )
    def test_tiled_equals_monolithic(self, shape, tile_shape):
        weights = _weights(shape)
        tiled = color_tiled(weights, tile_shape=tile_shape, jobs=1)
        _assert_identical(tiled, weights)

    @pytest.mark.parametrize("shape,tile_shape", [((24, 18), (7, 7)),
                                                  ((8, 7, 6), (4, 4, 4))])
    def test_parallel_workers_match(self, shape, tile_shape):
        weights = _weights(shape, seed=3)
        tiled = color_tiled(weights, tile_shape=tile_shape, jobs=2)
        _assert_identical(tiled, weights)
        assert len(tiled.records) == len(tiled.plan.tiles)

    def test_synthetic_source_never_materializes_the_grid(self):
        source = SyntheticWeightSource((20, 15), seed=7)
        tiled = color_tiled(source, tile_shape=(6, 6), jobs=1)
        full = source.region(((0, 20), (0, 15)))
        _assert_identical(tiled, full)


class TestOutputModes:
    def test_memmap_out_matches_in_memory(self, tmp_path):
        weights = _weights((15, 11), seed=1)
        out = tmp_path / "starts.npy"
        tiled = color_tiled(weights, tile_shape=(5, 5), jobs=1, out=out)
        in_mem = color_tiled(weights, tile_shape=(5, 5), jobs=1)
        np.testing.assert_array_equal(np.asarray(tiled.starts), in_mem.starts)
        np.testing.assert_array_equal(np.load(out), in_mem.starts)

    def test_digest_only_mode_carries_no_starts(self):
        weights = _weights((12, 12), seed=2)
        full = color_tiled(weights, tile_shape=(5, 5), jobs=1)
        lean = color_tiled(weights, tile_shape=(5, 5), jobs=1, assemble=False)
        assert lean.starts is None
        assert lean.digest == full.digest
        assert lean.maxcolor == full.maxcolor


class TestResume:
    def test_resume_adopts_completed_tiles(self, tmp_path):
        weights = _weights((14, 10), seed=4)
        log = tmp_path / "tiles.jsonl"
        first = color_tiled(weights, tile_shape=(5, 5), jobs=1, log_path=log)
        resumed = color_tiled(
            weights, tile_shape=(5, 5), jobs=1,
            log_path=log, resume_from=log, assemble=False,
        )
        assert resumed.resumed_tiles == len(first.plan.tiles)
        assert resumed.digest == first.digest
        assert resumed.maxcolor == first.maxcolor

    def test_stale_log_is_ignored_wholesale(self, tmp_path):
        log = tmp_path / "tiles.jsonl"
        color_tiled(_weights((14, 10), seed=4), tile_shape=(5, 5), jobs=1,
                    log_path=log)
        other = _weights((14, 10), seed=5)  # same plan, different weights
        resumed = color_tiled(other, tile_shape=(5, 5), jobs=1,
                              resume_from=log)
        assert resumed.resumed_tiles == 0
        _assert_identical(resumed, other)

    def test_resume_into_assembled_memory_is_refused(self, tmp_path):
        weights = _weights((14, 10), seed=4)
        log = tmp_path / "tiles.jsonl"
        color_tiled(weights, tile_shape=(5, 5), jobs=1, log_path=log)
        with pytest.raises(ValueError, match="assemble"):
            color_tiled(weights, tile_shape=(5, 5), jobs=1, resume_from=log)

    def test_log_records_every_tile(self, tmp_path):
        from repro.data import as_weight_source

        weights = _weights((14, 10), seed=4)
        log = tmp_path / "tiles.jsonl"
        tiled = color_tiled(weights, tile_shape=(5, 5), jobs=1, log_path=log)
        adopted = read_tile_log(
            log,
            plan_fingerprint=tiled.plan.fingerprint(),
            source_fingerprint=as_weight_source(weights).fingerprint(),
        )
        assert set(adopted) == set(range(len(tiled.plan.tiles)))


class TestFailures:
    def test_failed_tiles_raise_tiling_error(self):
        from repro.resilience.faults import clear_plan, install_plan, parse_fault_spec

        install_plan(parse_fault_spec("seed=1;tiling.tile:error=1.0"))
        try:
            with pytest.raises(TilingError) as excinfo:
                color_tiled(_weights((10, 10)), tile_shape=(5, 5), jobs=1)
            assert excinfo.value.records
        finally:
            clear_plan()

    def test_tiling_config_drives_defaults(self):
        weights = _weights((12, 8), seed=6)
        cfg = TilingConfig(mode="on", tile_shape=(4, 4))
        tiled = color_tiled(weights, tiling=cfg, jobs=1)
        assert tiled.plan.tile_shape == (4, 4)
        _assert_identical(tiled, weights)
