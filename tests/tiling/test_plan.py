"""Tile-plan geometry: exact covers, halo boxes, derived shapes."""

import numpy as np
import pytest

from repro.runtime.config import TilingConfig
from repro.tiling import derive_tile_shape, halo_boxes, padded_box, plan_tiles


def _cells(box):
    """Every cell coordinate inside a box, as a set of tuples."""
    ranges = [range(lo, hi) for lo, hi in box]
    out = set()

    def rec(prefix, rest):
        if not rest:
            out.add(tuple(prefix))
            return
        for v in rest[0]:
            rec(prefix + [v], rest[1:])

    rec([], ranges)
    return out


class TestPlanCover:
    @pytest.mark.parametrize(
        "shape,tile_shape",
        [
            ((10, 7), (4, 3)),     # non-divisible ragged edge
            ((16, 16), (8, 8)),    # exact division
            ((8, 8), (16, 16)),    # single tile larger than the grid
            ((9, 5), (1, 1)),      # tile smaller than the halo margin
            ((1, 6), (2, 2)),      # degenerate line
            ((6, 5, 4), (3, 3, 3)),
            ((5, 4, 3), (5, 4, 3)),  # single 3D tile
        ],
    )
    def test_tiles_partition_the_grid_exactly(self, shape, tile_shape):
        plan = plan_tiles(shape, tile_shape)
        seen = set()
        for tile in plan.tiles:
            cells = _cells(tile.box)
            assert not (cells & seen), "tiles overlap"
            seen |= cells
        assert len(seen) == int(np.prod(shape))

    def test_single_tile_when_tile_covers_grid(self):
        plan = plan_tiles((8, 8), (16, 16))
        assert plan.num_tiles == 1
        assert plan.tiles[0].box == ((0, 8), (0, 8))

    def test_positions_are_scan_ordered(self):
        plan = plan_tiles((10, 10), (4, 4))
        assert [t.pos for t in plan.tiles] == list(range(plan.num_tiles))

    def test_bands_group_by_outer_axis(self):
        plan = plan_tiles((10, 7), (4, 3))
        bands = plan.bands()
        assert len(bands) == plan.counts[-1]
        for b, band in enumerate(bands):
            for tile in band:
                assert tile.index[-1] == b

    def test_fingerprint_distinguishes_plans(self):
        a = plan_tiles((10, 10), (4, 4))
        b = plan_tiles((10, 10), (5, 5))
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == plan_tiles((10, 10), (4, 4)).fingerprint()


class TestHaloGeometry:
    def test_padded_box_clamps_at_borders(self):
        # Inner axes pad one cell both ways; the outer (last) axis pads one
        # column *before only* — GLL never looks forward along it.
        assert padded_box(((0, 4), (0, 4)), (10, 10)) == ((0, 5), (0, 4))
        assert padded_box(((4, 8), (4, 8)), (10, 10)) == ((3, 9), (3, 8))
        assert padded_box(((8, 10), (8, 10)), (10, 10)) == ((7, 10), (7, 10))

    @pytest.mark.parametrize(
        "box,shape",
        [
            (((4, 8), (3, 6)), (12, 9)),
            (((0, 4), (0, 3)), (12, 9)),
            (((8, 12), (6, 9)), (12, 9)),
            (((2, 4), (2, 4), (2, 4)), (6, 6, 6)),
            (((0, 3), (0, 3), (0, 3)), (6, 6, 6)),
        ],
    )
    def test_interior_plus_halos_tile_the_padded_box(self, box, shape):
        padded = padded_box(box, shape)
        covered = _cells(box)
        for strip in halo_boxes(box, shape):
            cells = _cells(strip)
            assert cells, f"empty halo strip {strip}"
            assert not (cells & covered), f"halo strip {strip} overlaps"
            covered |= cells
        assert covered == _cells(padded)

    def test_interior_tile_has_no_halos_on_far_borders(self):
        # A tile flush against the high corner needs no trailing strips.
        strips = halo_boxes(((8, 10), (8, 10)), (10, 10))
        for strip in strips:
            for (lo, hi), d in zip(strip, (10, 10)):
                assert hi <= d


class TestDeriveTileShape:
    def test_explicit_tile_shape_wins(self):
        cfg = TilingConfig(tile_shape=(5, 6))
        assert derive_tile_shape((100, 100), cfg) == (5, 6)

    def test_derived_shape_fits_grid_rank(self):
        cfg = TilingConfig(tile_cells=64)
        shape2 = derive_tile_shape((100, 100), cfg)
        shape3 = derive_tile_shape((20, 20, 20), cfg)
        assert len(shape2) == 2 and all(d >= 1 for d in shape2)
        assert len(shape3) == 3 and all(d >= 1 for d in shape3)

    def test_memory_budget_caps_the_tile(self):
        roomy = TilingConfig(tile_cells=1 << 16)
        capped = TilingConfig(tile_cells=1 << 16, memory_budget_mb=1)
        big = derive_tile_shape((4096, 4096), roomy)
        small = derive_tile_shape((4096, 4096), capped)
        assert int(np.prod(small)) <= int(np.prod(big))
