"""Tests for the boids application."""

import numpy as np
import pytest

from repro.apps.flocking import FlockingSimulation, random_flock
from repro.core.algorithms.registry import color_with


@pytest.fixture
def flock():
    return random_flock(num_boids=150, extent_size=40.0, radius=2.5, seed=3)


class TestConstruction:
    def test_default_grid(self, flock):
        assert flock.grid_dims == (8, 8)

    def test_radius_rule_enforced(self):
        with pytest.raises(ValueError, match="2x-radius"):
            FlockingSimulation(
                positions=np.zeros((2, 2)),
                velocities=np.zeros((2, 2)),
                radius=3.0,
                extent=np.array([[0.0, 10.0], [0.0, 10.0]]),
                grid_dims=(4, 4),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="positions and velocities"):
            FlockingSimulation(
                positions=np.zeros((3, 2)),
                velocities=np.zeros((2, 2)),
                radius=1.0,
                extent=np.array([[0.0, 10.0], [0.0, 10.0]]),
            )

    def test_instance_weights_are_counts(self, flock):
        inst, members = flock.build_instance()
        assert inst.total_weight == flock.num_boids
        assert sum(len(m) for m in members) == flock.num_boids


class TestDeterminism:
    @pytest.mark.parametrize("algorithm", ["GLF", "BDP", "GZO"])
    def test_threaded_equals_sequential(self, algorithm):
        a = random_flock(120, seed=7)
        b = a.copy()
        inst, members_a = a.build_instance()
        coloring = color_with(inst, algorithm)
        a.step_sequential(coloring, members_a)
        inst_b, members_b = b.build_instance()
        b.step_threaded(coloring, members_b, num_workers=4)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.velocities, b.velocities)

    def test_threaded_repeatable(self):
        a = random_flock(100, seed=1)
        b = a.copy()
        for flock_obj in (a, b):
            inst, members = flock_obj.build_instance()
            coloring = color_with(inst, "GLF")
            flock_obj.step_threaded(coloring, members)
        assert np.array_equal(a.positions, b.positions)

    def test_multi_step_run(self):
        flock_obj = random_flock(80, seed=5)
        for _ in range(5):
            inst, members = flock_obj.build_instance()
            coloring = color_with(inst, "BDP")
            flock_obj.step_threaded(coloring, members)
        assert np.isfinite(flock_obj.positions).all()
        assert (flock_obj.positions >= flock_obj.extent[:, 0]).all()
        assert (flock_obj.positions <= flock_obj.extent[:, 1]).all()


class TestBehaviour:
    def test_speed_capped(self, flock):
        inst, members = flock.build_instance()
        coloring = color_with(inst, "GLF")
        for _ in range(3):
            flock.step_sequential(coloring, members)
            inst, members = flock.build_instance()
            coloring = color_with(inst, "GLF")
        speeds = np.sqrt((flock.velocities**2).sum(axis=1))
        assert (speeds <= flock.max_speed + 1e-9).all()

    def test_alignment_increases_polarization(self):
        # Deterministic run: strong alignment gain pulls a random flock from
        # near-zero polarization (0.05) to a visibly aligned state despite
        # wall reflections scrambling headings early on.
        flock_obj = random_flock(200, extent_size=20.0, radius=2.5, seed=9)
        flock_obj.alignment = 0.3
        start = flock_obj.polarization()
        for _ in range(60):
            inst, members = flock_obj.build_instance()
            coloring = color_with(inst, "GLF")
            flock_obj.step_sequential(coloring, members, dt=0.5)
        end = flock_obj.polarization()
        assert end > 2 * start
        assert end > 0.15

    def test_reflection_at_walls(self):
        sim = FlockingSimulation(
            positions=np.array([[0.5, 5.0]]),
            velocities=np.array([[-1.0, 0.0]]),
            radius=1.0,
            extent=np.array([[0.0, 10.0], [0.0, 10.0]]),
        )
        inst, members = sim.build_instance()
        coloring = color_with(inst, "GLF")
        sim.step_sequential(coloring, members, dt=1.0)
        assert sim.positions[0, 0] >= 0.0
        assert sim.velocities[0, 0] > 0  # bounced

    def test_isolated_boid_keeps_velocity(self):
        sim = FlockingSimulation(
            positions=np.array([[5.0, 5.0], [50.0, 50.0]]),
            velocities=np.array([[0.5, 0.0], [0.0, 0.5]]),
            radius=2.0,
            extent=np.array([[0.0, 60.0], [0.0, 60.0]]),
        )
        inst, members = sim.build_instance()
        coloring = color_with(inst, "GLF")
        v_before = sim.velocities.copy()
        sim.step_sequential(coloring, members, dt=0.0)
        assert np.allclose(sim.velocities, v_before)

    def test_polarization_range(self, flock):
        assert 0.0 <= flock.polarization() <= 1.0 + 1e-9
