"""Tests for the n-body application."""

import numpy as np
import pytest

from repro.apps.nbody import NBodySystem
from repro.core.algorithms.registry import color_with


@pytest.fixture
def system(rng):
    extent = np.array([[0.0, 40.0], [0.0, 30.0]])
    positions = rng.uniform([0, 0], [40, 30], size=(120, 2))
    return NBodySystem(positions=positions, cutoff=2.5, extent=extent)


class TestConstruction:
    def test_default_grid_is_finest_legal(self, system):
        assert system.grid_dims == (8, 6)

    def test_cutoff_rule_enforced(self, rng):
        extent = np.array([[0.0, 10.0], [0.0, 10.0]])
        pos = rng.uniform(0, 10, size=(10, 2))
        with pytest.raises(ValueError, match="2x-cutoff"):
            NBodySystem(positions=pos, cutoff=2.0, extent=extent, grid_dims=(4, 2))

    def test_invalid_inputs(self, rng):
        extent = np.array([[0.0, 10.0], [0.0, 10.0]])
        with pytest.raises(ValueError, match="positions"):
            NBodySystem(positions=np.ones((3, 3)), cutoff=1.0, extent=extent)
        with pytest.raises(ValueError, match="cutoff"):
            NBodySystem(positions=np.ones((3, 2)), cutoff=0.0, extent=extent)

    def test_regions_partition_particles(self, system):
        all_ids = np.concatenate(system.region_particles)
        assert sorted(all_ids.tolist()) == list(range(system.num_particles))

    def test_instance_is_2d_stencil(self, system):
        inst = system.instance
        assert inst.is_2d
        assert inst.geometry.shape == system.grid_dims


class TestWeights:
    def test_weights_count_pairs_exactly(self, system):
        # Total task weight equals the number of interacting candidate pairs
        # owned across regions: every within-cutoff pair is counted once.
        inst = system.instance
        # Independent count: pairs whose regions are identical or Moore-adjacent.
        regions = system.particle_regions
        Y = system.grid_dims[1]
        total = 0
        n = system.num_particles
        for a in range(n):
            for b in range(a + 1, n):
                ra, rb = divmod(int(regions[a]), Y), divmod(int(regions[b]), Y)
                if abs(ra[0] - rb[0]) <= 1 and abs(ra[1] - rb[1]) <= 1:
                    total += 1
        assert inst.total_weight == total

    def test_empty_system(self):
        extent = np.array([[0.0, 10.0], [0.0, 10.0]])
        system = NBodySystem(positions=np.empty((0, 2)), cutoff=1.0, extent=extent)
        assert system.instance.total_weight == 0
        assert np.allclose(system.forces_serial().shape, (0, 2))


class TestForces:
    def test_tasks_match_serial_reference(self, system):
        assert np.allclose(system.forces_by_tasks(), system.forces_serial())

    def test_task_order_irrelevant(self, system):
        n = system.instance.num_vertices
        fwd = system.forces_by_tasks(np.arange(n))
        rev = system.forces_by_tasks(np.arange(n)[::-1])
        assert np.allclose(fwd, rev)

    def test_newton_third_law(self, system):
        # Symmetric accumulation: total momentum change is zero.
        forces = system.forces_serial()
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-9)

    def test_far_particles_no_force(self):
        extent = np.array([[0.0, 100.0], [0.0, 100.0]])
        pos = np.array([[10.0, 10.0], [90.0, 90.0]])
        system = NBodySystem(positions=pos, cutoff=2.0, extent=extent)
        assert np.allclose(system.forces_serial(), 0.0)

    def test_repulsive(self):
        extent = np.array([[0.0, 10.0], [0.0, 10.0]])
        pos = np.array([[4.0, 5.0], [5.0, 5.0]])
        system = NBodySystem(positions=pos, cutoff=2.0, extent=extent)
        forces = system.forces_serial()
        assert forces[0, 0] < 0  # pushed left
        assert forces[1, 0] > 0  # pushed right

    @pytest.mark.parametrize("algorithm", ["GLF", "BDP", "GLL"])
    def test_threaded_matches_serial(self, system, algorithm):
        coloring = color_with(system.instance, algorithm)
        threaded = system.forces_threaded(coloring, num_workers=4)
        assert np.allclose(threaded, system.forces_serial())

    def test_threaded_rejects_mismatched_coloring(self, system, rng):
        from repro.core.problem import IVCInstance

        other = IVCInstance.from_grid_2d(rng.integers(0, 3, size=(2, 2)))
        with pytest.raises(ValueError, match="does not match"):
            system.forces_threaded(color_with(other, "GLF"))


class TestDynamics:
    def test_step_moves_particles(self, system):
        before = system.positions.copy()
        velocities = np.zeros_like(system.positions)
        coloring = color_with(system.instance, "GLF")
        velocities = system.step(velocities, dt=0.1, coloring=coloring)
        assert not np.allclose(system.positions, before)
        # Positions stay inside the extent.
        assert (system.positions >= system.extent[:, 0]).all()
        assert (system.positions <= system.extent[:, 1]).all()

    def test_step_invalidates_decomposition(self, system):
        coloring = color_with(system.instance, "GLF")
        system.step(np.zeros_like(system.positions), dt=0.5, coloring=coloring)
        # Rebuilt instance reflects moved particles without raising.
        assert system.instance.total_weight >= 0
