"""Tests for the batch execution engine (repro.engine)."""

import signal
import time

import pytest

from repro.core.algorithms.registry import REGISTRY, AlgorithmSpec
from repro.engine import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
    diff_run_logs,
    read_run_log,
    resolve_jobs,
    run_grid,
)
from repro.experiments import (
    EmptySuiteError,
    SuiteExecutionError,
    SuiteResult,
    run_suite,
)
from tests.conftest import random_2d_instances

ALGOS = ["GLL", "GLF", "BDP"]


def _always_raises(instance):
    raise RuntimeError("injected failure")


def _sleeper(instance):
    time.sleep(5.0)
    raise AssertionError("unreachable")  # pragma: no cover


@pytest.fixture
def crashing_algorithm():
    """Register an always-raising algorithm for the duration of a test."""
    REGISTRY.register(
        AlgorithmSpec("BOOM", _always_raises, needs_geometry=False,
                      is_extension=True, description="test crasher")
    )
    yield "BOOM"
    REGISTRY.unregister("BOOM")


@pytest.fixture
def sleeping_algorithm():
    REGISTRY.register(
        AlgorithmSpec("SLEEP", _sleeper, needs_geometry=False,
                      is_extension=True, description="test sleeper")
    )
    yield "SLEEP"
    REGISTRY.unregister("SLEEP")


class TestRunGrid:
    def test_grid_order_and_contents(self):
        instances = random_2d_instances(count=3, max_dim=5)
        records = run_grid(instances, ALGOS, jobs=1)
        assert len(records) == 3 * len(ALGOS)
        for pos, record in enumerate(records):
            assert record.instance_index == pos // len(ALGOS)
            assert record.algorithm == ALGOS[pos % len(ALGOS)]
            assert record.status == STATUS_OK
            assert record.maxcolor >= record.lower_bound
            assert record.shape == instances[record.instance_index].geometry.shape
            assert record.worker.startswith("pid-")

    def test_serial_and_parallel_identical(self):
        instances = random_2d_instances(count=4, max_dim=5)
        serial = run_grid(instances, ALGOS, jobs=1)
        parallel = run_grid(instances, ALGOS, jobs=2)
        assert [r.maxcolor for r in serial] == [r.maxcolor for r in parallel]
        assert [r.lower_bound for r in serial] == [r.lower_bound for r in parallel]
        assert all(r.status == STATUS_OK for r in parallel)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crashing_cell_is_isolated(self, jobs, crashing_algorithm):
        instances = random_2d_instances(count=2, max_dim=4)
        records = run_grid(instances, ["GLF", crashing_algorithm], jobs=jobs)
        by_algo = {}
        for record in records:
            by_algo.setdefault(record.algorithm, []).append(record)
        assert all(r.status == STATUS_OK for r in by_algo["GLF"])
        assert all(r.status == STATUS_ERROR for r in by_algo[crashing_algorithm])
        assert all("injected failure" in r.error for r in by_algo[crashing_algorithm])

    @pytest.mark.skipif(not hasattr(signal, "SIGALRM"), reason="needs SIGALRM")
    def test_cell_timeout_records_timeout(self, sleeping_algorithm):
        instances = random_2d_instances(count=1, max_dim=4)
        records = run_grid(
            instances, ["GLF", sleeping_algorithm], jobs=1, cell_timeout=0.2
        )
        statuses = {r.algorithm: r.status for r in records}
        assert statuses["GLF"] == STATUS_OK
        assert statuses[sleeping_algorithm] == STATUS_TIMEOUT

    def test_capture_starts_roundtrip(self, small_2d):
        import numpy as np

        from repro.core.coloring import Coloring

        (record,) = run_grid([small_2d], ["BDP"], jobs=1, capture_starts=True)
        rebuilt = Coloring(small_2d, np.asarray(record.starts, dtype=np.int64))
        assert rebuilt.check().maxcolor == record.maxcolor

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1


class TestRunLog:
    def test_jsonl_streaming_roundtrip(self, tmp_path):
        instances = random_2d_instances(count=2, max_dim=4)
        log = tmp_path / "run.jsonl"
        records = run_grid(instances, ALGOS, jobs=1, log_path=log)
        loaded = read_run_log(log)
        assert sorted(r.to_json().items() for r in loaded) == sorted(
            r.to_json().items() for r in records
        )

    def test_diff_run_logs(self):
        a = RunRecord(0, "inst", (2, 2), "GLF", "ok", maxcolor=10)
        b = RunRecord(0, "inst", (2, 2), "GLF", "ok", maxcolor=12)
        same = RunRecord(0, "inst", (2, 2), "BDP", "ok", maxcolor=9)
        assert diff_run_logs([a, same], [b, same]) == [("inst", "GLF", 10, 12)]
        assert diff_run_logs([a], [a]) == []


class TestSuiteIntegration:
    def test_suite_serial_parallel_identical_maxcolors(self):
        instances = random_2d_instances(count=4, max_dim=5)
        serial = run_suite(instances, algorithms=ALGOS, jobs=1)
        parallel = run_suite(instances, algorithms=ALGOS, jobs=2)
        assert serial.maxcolors == parallel.maxcolors
        assert serial.lower_bounds == parallel.lower_bounds

    def test_error_cell_recorded_not_fatal(self, crashing_algorithm):
        instances = random_2d_instances(count=3, max_dim=4)
        result = run_suite(
            instances, algorithms=["GLF", crashing_algorithm],
            jobs=2, on_error="record",
        )
        assert len(result.errors) == 3
        assert all(r.algorithm == crashing_algorithm for r in result.errors)
        assert result.maxcolors["GLF"] != [-1, -1, -1]
        assert result.maxcolors[crashing_algorithm] == [-1, -1, -1]
        assert result.ok_indices() == []  # every instance has a failed cell

    def test_error_cell_raises_by_default(self, crashing_algorithm):
        instances = random_2d_instances(count=1, max_dim=4)
        with pytest.raises(SuiteExecutionError, match="injected failure"):
            run_suite(instances, algorithms=[crashing_algorithm])

    def test_profile_refuses_failed_cells(self, crashing_algorithm):
        instances = random_2d_instances(count=2, max_dim=4)
        result = run_suite(
            instances, algorithms=["GLF", crashing_algorithm],
            jobs=1, on_error="record",
        )
        # The crasher fails on every instance, so nothing is left to
        # profile — the typed empty-suite error, not a cryptic ValueError
        # from the profile math.
        with pytest.raises(EmptySuiteError, match="every instance"):
            result.profile()

    def test_profile_refuses_partially_failed_suite(self, crashing_algorithm):
        instances = random_2d_instances(count=2, max_dim=4)
        result = run_suite(
            instances, algorithms=["GLF", crashing_algorithm],
            jobs=1, on_error="record",
        )
        # Graft clean cells for instance 1 so only instance 0 is dirty: the
        # failed-cells guard (subset to ok_indices first) still applies.
        clean = run_suite(instances[1:], algorithms=["GLF", "BD"], jobs=1)
        mixed = SuiteResult(
            instances=result.instances,
            maxcolors={
                "GLF": result.maxcolors["GLF"],
                crashing_algorithm: [
                    result.maxcolors[crashing_algorithm][0],
                    clean.maxcolors["BD"][0],
                ],
            },
            times=result.times,
            lower_bounds=result.lower_bounds,
            records=[r for r in result.records if r.instance_index == 0],
        )
        assert mixed.ok_indices() == [1]
        with pytest.raises(ValueError, match="failed cells"):
            mixed.profile()

    def test_subset_remaps_records(self):
        instances = random_2d_instances(count=3, max_dim=4)
        result = run_suite(instances, algorithms=["GLF"], jobs=1)
        sub = result.subset([2])
        assert [r.instance_index for r in sub.records] == [0]
        assert sub.records[0].instance == instances[2].name
