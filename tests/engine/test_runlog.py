"""Append-safety tests for the JSONL run log."""

import json

import pytest

from repro.engine.records import RunRecord
from repro.engine.runlog import RunLogWriter, read_run_log


def _record(idx: int) -> RunRecord:
    return RunRecord(
        instance_index=idx,
        instance=f"inst-{idx}",
        shape=(4, 4),
        algorithm="GLL",
        status="ok",
        maxcolor=10 + idx,
        lower_bound=8,
        elapsed=0.01,
        worker="pid-0",
    )


class TestAppendSafety:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as writer:
            for idx in range(3):
                writer.write(_record(idx))
        records = read_run_log(path)
        assert [r.instance_index for r in records] == [0, 1, 2]

    def test_flushed_per_record(self, tmp_path):
        # Every completed write is readable before the writer closes — the
        # crash-safety contract: a killed run leaves a readable prefix.
        path = tmp_path / "run.jsonl"
        writer = RunLogWriter(path).open()
        try:
            writer.write(_record(0))
            writer.write(_record(1))
            assert len(read_run_log(path)) == 2
        finally:
            writer.close()

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as writer:
            writer.write(_record(0))
            writer.write(_record(1))
        # Simulate a writer killed mid-append: a partial JSON line at EOF.
        with path.open("a") as handle:
            handle.write(json.dumps(_record(2).to_json())[:25])
        records = read_run_log(path)
        assert [r.instance_index for r in records] == [0, 1]

    def test_truncated_trailing_line_strict_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as writer:
            writer.write(_record(0))
        with path.open("a") as handle:
            handle.write('{"instance_index": 1, "inst')
        with pytest.raises(ValueError, match="line 2"):
            read_run_log(path, strict=True)

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with path.open("w") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps(_record(0).to_json()) + "\n")
        with pytest.raises(ValueError, match="line 1"):
            read_run_log(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with path.open("w") as handle:
            handle.write(json.dumps(_record(0).to_json()) + "\n\n\n")
            handle.write(json.dumps(_record(1).to_json()) + "\n")
        assert len(read_run_log(path)) == 2

    def test_appending_after_truncation_recovers_new_records(self, tmp_path):
        # A fresh writer appending after a torn line starts on a new line
        # boundary only if the previous write completed; the reader must
        # still surface the clean prefix either way.
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as writer:
            writer.write(_record(0))
        assert len(read_run_log(path)) == 1
        with RunLogWriter(path) as writer:
            writer.write(_record(1))
        assert [r.instance_index for r in read_run_log(path)] == [0, 1]
