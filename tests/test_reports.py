"""Tests for the figure-report builders."""

import numpy as np
import pytest

from repro.experiments import run_suite
from repro.reports import (
    FIRST_FIT_ALGORITHMS,
    PURE_FIRST_FIT,
    STKDEFigure,
    bd_improvement_report,
    per_dataset_report,
    stkde_figure,
    suite_quality_report,
    suite_runtime_report,
)
from tests.conftest import random_2d_instances


@pytest.fixture(scope="module")
def result():
    instances = random_2d_instances(count=4, seed=3)
    for i, inst in enumerate(instances):
        inst.metadata["dataset"] = "A" if i % 2 == 0 else "B"
    return run_suite(instances)


class TestSuiteReports:
    def test_quality_report_contains_all_algorithms(self, result):
        text = suite_quality_report(result, "K4 LB")
        for name in result.algorithms:
            assert name in text
        assert "instances: 4" in text
        assert "K4 LB" in text

    def test_runtime_report_shape(self, result):
        text = suite_runtime_report(result)
        assert "total s" in text
        assert len(text.split("\n")) == 2 + len(result.algorithms)

    def test_per_dataset_report(self, result):
        text = per_dataset_report(result, ("A", "B", "missing"))
        assert "--- A (2 instances) ---" in text
        assert "--- B (2 instances) ---" in text
        assert "missing" not in text

    def test_bd_improvement_report(self, result):
        text = bd_improvement_report(result)
        assert "BDP improves BD" in text
        assert "paper" in text


class TestSTKDEFigure:
    def test_figure_builds(self, rng):
        from repro.core.problem import IVCInstance

        inst = IVCInstance.from_grid_3d(rng.integers(0, 10, size=(4, 4, 3)))
        fig = stkde_figure(inst, workers=4)
        assert isinstance(fig, STKDEFigure)
        assert len(fig.rows) == 7
        assert fig.workers == 4
        assert fig.total_work > 0

    def test_first_fit_cp_equals_maxcolor(self, rng):
        from repro.core.problem import IVCInstance

        inst = IVCInstance.from_grid_3d(rng.integers(0, 10, size=(4, 4, 3)))
        fig = stkde_figure(inst, workers=4, costs=inst.weights.astype(float))
        for row in fig.rows:
            if row.algorithm in PURE_FIRST_FIT:
                assert row.critical_path == pytest.approx(row.maxcolor)
            elif row.algorithm in FIRST_FIT_ALGORITHMS:  # BDP: near-tight
                assert row.critical_path <= row.maxcolor + 1e-9

    def test_to_text(self, rng):
        from repro.core.problem import IVCInstance

        inst = IVCInstance.from_grid_3d(rng.integers(0, 8, size=(3, 3, 3)))
        text = stkde_figure(inst, workers=2).to_text()
        assert "linear fit, first-fit colorings" in text
        assert "work-bound floor" in text
