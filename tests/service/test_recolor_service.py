"""End-to-end tests of the streaming ``recolor`` verb and its session store.

A server thread holds recolor sessions (one weights grid + one starts grid
each); clients seed a session, stream sparse weight deltas, and must end up
bit-identical to a cold full recolor — over both the NDJSON and the binary
wire.  Unknown/expired sessions answer with a *typed* error frame on the
live connection (never a disconnect), are counted in ``/metrics``, and the
client transparently recovers from them by re-seeding from its mirror.
"""

import numpy as np
import pytest

from repro.incremental.engine import full_recolor
from repro.runtime.config import IncrementalConfig, RuntimeConfig
from repro.service.client import ServiceClient
from repro.service.protocol import UNKNOWN_SESSION_CODE
from repro.service.server import ServerConfig, ServerThread
from repro.service.sessions import (
    SessionStore,
    UnknownSessionError,
)


def _grid(shape, seed=0):
    return np.random.default_rng(seed).integers(
        1, 50, size=shape, dtype=np.int64
    )


class TestSessionStore:
    def _clock(self):
        state = {"now": 0.0}

        def clock():
            return state["now"]

        return state, clock

    def test_open_get_roundtrip(self):
        store = SessionStore(limit=4, ttl=100.0)
        weights = _grid((4, 4))
        starts = full_recolor(weights, "GLL")
        store.open("s1", "GLL", weights, starts, 7)
        session = store.get("s1")
        assert session.algorithm == "GLL"
        assert session.maxcolor == 7
        assert np.array_equal(session.weights, weights)

    def test_missing_session_raises_typed_error(self):
        store = SessionStore(limit=4, ttl=100.0)
        with pytest.raises(UnknownSessionError) as exc:
            store.get("nope")
        assert exc.value.code == UNKNOWN_SESSION_CODE
        assert exc.value.reason == "missing"
        assert "nope" in str(exc.value)

    def test_ttl_expiry_is_lazy_and_counted(self):
        state, clock = self._clock()
        store = SessionStore(limit=4, ttl=10.0, clock=clock)
        weights = _grid((3, 3))
        store.open("s1", "GLL", weights, full_recolor(weights, "GLL"), 1)
        state["now"] = 5.0
        store.get("s1")  # touch refreshes the TTL
        state["now"] = 14.0
        store.get("s1")  # still inside the refreshed window
        state["now"] = 30.0
        with pytest.raises(UnknownSessionError) as exc:
            store.get("s1")
        assert exc.value.reason == "expired"
        assert store.stats()["expired"] == 1
        assert store.stats()["live"] == 0

    def test_lru_eviction_past_limit(self):
        store = SessionStore(limit=2, ttl=100.0)
        weights = _grid((3, 3))
        starts = full_recolor(weights, "GLL")
        store.open("a", "GLL", weights, starts, 1)
        store.open("b", "GLL", weights, starts, 1)
        store.get("a")  # freshen "a"; "b" becomes the LRU entry
        store.open("c", "GLL", weights, starts, 1)
        store.get("a")
        store.get("c")
        with pytest.raises(UnknownSessionError):
            store.get("b")
        assert store.stats()["evicted"] == 1

    def test_commit_advances_delta_counter(self):
        store = SessionStore(limit=2, ttl=100.0)
        weights = _grid((3, 3))
        starts = full_recolor(weights, "GLL")
        store.open("s", "GLL", weights, starts, 1)
        session = store.get("s")
        assert session.deltas_applied == 0
        store.commit(session, weights, starts, 1)
        assert store.get("s").deltas_applied == 1

    def test_reopen_is_idempotent_and_drop_forgets(self):
        store = SessionStore(limit=2, ttl=100.0)
        weights = _grid((3, 3))
        starts = full_recolor(weights, "GLL")
        store.open("s", "GLL", weights, starts, 1)
        store.open("s", "GLL", weights, starts, 2)
        assert store.stats()["live"] == 1
        assert store.get("s").maxcolor == 2
        store.drop("s")
        with pytest.raises(UnknownSessionError):
            store.get("s")


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(
        port=0, compute_threads=2, default_timeout=20.0, cache_size=8,
    )
    with ServerThread(config) as thread:
        yield thread


@pytest.fixture(params=["ndjson", "binary"])
def client(server, request):
    with ServiceClient(
        "127.0.0.1", server.port, timeout=30.0, wire=request.param
    ) as c:
        yield c


class TestRecolorVerb:
    def test_seed_then_deltas_bit_identical_on_both_wires(self, client):
        session = f"t-{client.wire}-stream"
        weights = _grid((16, 16), seed=3)
        seeded = client.recolor_open(session, weights, "GLF")
        assert seeded.ok and seeded.mode == "seed"
        assert np.array_equal(seeded.starts, full_recolor(weights, "GLF"))

        rng = np.random.default_rng(7)
        current = weights.copy()
        for step in range(4):
            idx = rng.choice(current.size, size=3, replace=False)
            new = rng.integers(1, 50, size=3, dtype=np.int64)
            response = client.recolor_delta(session, idx, new)
            assert response.ok, response.error
            assert response.mode in ("incremental", "fallback")
            current.ravel()[idx] = new

        mirror_weights, mirror_starts = client.recolor_state(session)
        assert np.array_equal(mirror_weights, current)
        assert np.array_equal(mirror_starts, full_recolor(current, "GLF"))

    def test_delta_response_carries_provenance(self, client):
        session = f"t-{client.wire}-prov"
        weights = _grid((12, 12), seed=5)
        assert client.recolor_open(session, weights, "GLF").ok
        response = client.recolor_delta(session, [17], [49])
        assert response.ok
        assert response.recolor["cells_dirty"] == 1
        assert response.recolor["mode"] == response.mode
        assert response.maxcolor is not None

    def test_3d_session(self, client):
        session = f"t-{client.wire}-3d"
        weights = _grid((6, 6, 6), seed=9)
        seeded = client.recolor_open(session, weights, "GLL")
        assert seeded.ok and seeded.starts.shape == (6, 6, 6)
        response = client.recolor_delta(session, [100], [13])
        assert response.ok
        _, mirror_starts = client.recolor_state(session)
        current = weights.copy()
        current.ravel()[100] = 13
        assert np.array_equal(mirror_starts, full_recolor(current, "GLL"))

    def test_dense_delta_reports_fallback(self, client):
        session = f"t-{client.wire}-dense"
        weights = _grid((16, 16), seed=11)
        assert client.recolor_open(session, weights, "GLL").ok
        idx = np.arange(weights.size)
        new = np.random.default_rng(2).integers(
            1, 50, size=weights.size, dtype=np.int64
        )
        response = client.recolor_delta(session, idx, new)
        assert response.ok
        assert response.mode == "fallback"
        assert response.recolor["fallback_reason"] == "cone-budget"
        _, mirror_starts = client.recolor_state(session)
        assert np.array_equal(
            mirror_starts, full_recolor(new.reshape(weights.shape), "GLL")
        )

    def test_unknown_session_is_a_typed_error_not_a_disconnect(self, client):
        response = client.recolor_delta(
            "never-seeded", [0], [1], reseed=False
        )
        assert response.status == "invalid"
        assert response.code == UNKNOWN_SESSION_CODE
        assert response.unknown_session
        # The connection survives the error frame: the same socket keeps
        # serving.
        assert client.ping() < 10.0
        weights = _grid((8, 8), seed=1)
        assert client.recolor_open("after-error", weights, "GLL").ok

    def test_unknown_sessions_counted_in_metrics(self, server, client):
        before = (
            client.metrics().get("counters", {})
            .get("recolor_unknown_sessions", 0)
        )
        client.recolor_delta("still-not-there", [0], [1], reseed=False)
        snap = client.metrics()
        assert snap["counters"]["recolor_unknown_sessions"] == before + 1
        assert snap["sessions"]["limit"] >= 1
        assert "live" in snap["sessions"]

    def test_out_of_range_delta_rejected(self, client):
        session = f"t-{client.wire}-oob"
        weights = _grid((4, 4), seed=13)
        assert client.recolor_open(session, weights, "GLL").ok
        response = client.recolor_delta(
            session, [weights.size + 5], [1], reseed=False
        )
        assert response.status == "invalid"
        assert not response.unknown_session


class TestMirrorRecovery:
    def test_client_reseeds_after_eviction(self):
        runtime = RuntimeConfig(
            incremental=IncrementalConfig(session_limit=1)
        )
        config = ServerConfig(port=0, runtime=runtime, default_timeout=20.0)
        with ServerThread(config) as thread:
            with ServiceClient("127.0.0.1", thread.port, timeout=30.0) as c:
                w1 = _grid((10, 10), seed=1)
                w2 = _grid((10, 10), seed=2)
                assert c.recolor_open("first", w1, "GLF").ok
                # Seeding "second" evicts "first" (limit=1).
                assert c.recolor_open("second", w2, "GLF").ok
                probe = c.recolor_delta("first", [3], [7], reseed=False)
                assert probe.unknown_session
                # With reseed=True the client recovers transparently from
                # its mirror and the delta lands.
                response = c.recolor_delta("first", [3], [7])
                assert response.ok, response.error
                current = w1.copy()
                current.ravel()[3] = 7
                _, mirror_starts = c.recolor_state("first")
                assert np.array_equal(
                    mirror_starts, full_recolor(current, "GLF")
                )
