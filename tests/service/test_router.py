"""End-to-end tests of the multi-process router tier.

A :class:`~repro.service.router.RouterThread` with two spawned worker
processes runs per test class.  These tests pin down the scaling
contracts: content-key routing is stable (same request → same worker),
the shared L2 directory serves a dead worker's results from its sibling,
a killed worker degrades service rather than failing it, and the merged
``/metrics`` view names every worker.

Spawned processes make this the slowest service test module; it stays
well under the tier-1 budget because the grids are tiny.
"""

import time

import numpy as np
import pytest

from repro.core.algorithms.registry import color_with
from repro.core.problem import IVCInstance
from repro.incremental.engine import full_recolor
from repro.service.client import ServiceClient
from repro.service.frames import session_routing_key
from repro.service.router import RouterConfig, RouterThread, rank_workers
from repro.service.server import ServerConfig


@pytest.fixture(scope="module")
def router():
    config = RouterConfig(
        port=0,
        workers=2,
        worker_config=ServerConfig(
            max_batch=16, batch_window=0.002, queue_limit=64,
            cache_size=32, compute_threads=1, default_timeout=20.0,
        ),
    )
    with RouterThread(config) as thread:
        yield thread


@pytest.fixture()
def client(router):
    with ServiceClient("127.0.0.1", router.port, timeout=30.0) as c:
        yield c


def _grid(shape, seed=0):
    return np.random.default_rng(seed).integers(1, 50, size=shape, dtype=np.int64)


class TestRankWorkers:
    def test_deterministic_and_complete(self):
        ranking = rank_workers("ab" * 20, 4)
        assert sorted(ranking) == [0, 1, 2, 3]
        assert ranking == rank_workers("ab" * 20, 4)

    def test_membership_change_is_minimal(self):
        # Rendezvous hashing: dropping the last slot only moves keys that
        # lived on it — every other key keeps its owner.
        keys = [f"{i:040x}" for i in range(64)]
        before = {k: rank_workers(k, 4)[0] for k in keys}
        after = {k: rank_workers(k, 3)[0] for k in keys}
        for k in keys:
            if before[k] != 3:
                assert after[k] == before[k]


class TestRouting:
    def test_served_and_bit_identical(self, client):
        weights = _grid((9, 7), seed=1)
        response = client.color(weights, "GLL")
        assert response.ok, response.error
        direct = color_with(IVCInstance.from_grid_2d(weights), "GLL")
        assert np.array_equal(response.starts.ravel(), direct.starts)
        assert response.worker in ("w0", "w1")

    def test_same_key_same_worker(self, client):
        weights = _grid((8, 8), seed=2)
        owners = {client.color(weights, "GLL").worker for _ in range(6)}
        assert len(owners) == 1  # content-key routing is stable

    def test_repeat_request_hits_worker_cache(self, client):
        weights = _grid((10, 6), seed=3)
        first = client.color(weights, "BDP")
        again = client.color(weights, "BDP")
        assert first.ok and again.ok
        assert again.cached
        assert again.worker == first.worker

    def test_distinct_keys_spread_across_workers(self, client):
        owners = {
            client.color(_grid((6, 6), seed=s), "GLL").worker
            for s in range(20, 36)
        }
        assert owners == {"w0", "w1"}

    def test_ndjson_through_router(self, router):
        weights = _grid((7, 7), seed=4)
        with ServiceClient("127.0.0.1", router.port, wire="ndjson") as c:
            response = c.color(weights, "GLL")
            assert c.wire == "ndjson"
        assert response.ok
        direct = color_with(IVCInstance.from_grid_2d(weights), "GLL")
        assert np.array_equal(response.starts.ravel(), direct.starts)
        assert response.worker in ("w0", "w1")

    def test_pipelined_bursts_through_router_verify(self, router):
        # The router's pipelined forward path: many frames in flight per
        # connection, fanned across both workers, responses re-paired in
        # order — verify=True proves no response ever pairs with the
        # wrong request.
        from repro.service.loadgen import build_workload, run_loadgen

        workload = build_workload(
            [(8, 6), (4, 4, 3)], distinct=6, algorithm="GLL", seed=11
        )
        report = run_loadgen(
            "127.0.0.1", router.port, workload,
            requests=60, concurrency=3, verify=True, seed=11,
            pipeline=5, zipf=1.0,
        )
        assert report.ok == 60
        assert report.divergences == 0
        assert report.errors == 0
        assert report.wire == "binary"
        assert len(report.workers_seen) == 2  # both workers served traffic

    def test_merged_metrics_name_every_worker(self, client):
        client.color(_grid((5, 5), seed=5), "GLL")
        snap = client.metrics()
        assert set(snap["workers"]) == {"w0", "w1"}
        for worker_snap in snap["workers"].values():
            assert worker_snap["worker"]["alive"]
        assert snap["router"]["workers"] == 2
        assert snap["fleet"]["counters"]["responses_ok"] >= 1
        assert snap["counters"]["routed_total"] >= 1
        assert snap["server"]["worker_id"] == "router"


class TestFailover:
    def test_kill_worker_degrades_not_fails(self, router):
        with ServiceClient("127.0.0.1", router.port, timeout=30.0) as client:
            weights = _grid((11, 5), seed=6)
            first = client.color(weights, "GLL")
            assert first.ok
            owner = first.worker
            handle = next(
                h for h in router.router.pool.handles if h.worker_id == owner
            )
            handle.process.kill()
            handle.process.join(5.0)

            # The very next request for the dead worker's key must still be
            # served — by the sibling, warm from the shared L2 directory.
            survived = client.color(weights, "GLL")
            assert survived.ok, survived.error
            assert survived.worker != owner
            assert np.array_equal(survived.starts, first.starts)

            # The supervisor restarts the slot (same worker_id, new pid).
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                snap = client.metrics()
                worker = snap["workers"].get(owner, {}).get("worker", {})
                if worker.get("alive") and worker.get("restarts", 0) >= 1:
                    break
                time.sleep(0.2)
            else:
                pytest.fail(f"worker {owner} was not restarted")
            assert snap["counters"]["worker_restarts"] >= 1

            # And the restarted owner serves its old key from the L2 tier.
            recovered = client.color(weights, "GLL")
            assert recovered.ok
            assert np.array_equal(recovered.starts, first.starts)


class TestRecolorRouting:
    def _stream(self, client, session, shape, deltas, seed):
        weights = _grid(shape, seed=seed)
        assert client.recolor_open(session, weights, "GLF").ok
        rng = np.random.default_rng(seed + 100)
        current = weights.copy()
        for _ in range(deltas):
            idx = rng.choice(current.size, size=3, replace=False)
            vals = rng.integers(1, 50, size=3, dtype=np.int64)
            response = client.recolor_delta(session, idx, vals)
            assert response.ok, response.error
            current.ravel()[idx] = vals
        return current

    @pytest.mark.parametrize("wire", ["binary", "ndjson"])
    def test_session_streams_through_router_bit_identical(self, router, wire):
        # The recolor verb pipelines through the router exactly like color,
        # but routed by the session key so every delta of a session lands
        # on the same worker's in-memory state.
        with ServiceClient("127.0.0.1", router.port, timeout=30.0,
                           wire=wire) as client:
            session = f"route-{wire}"
            current = self._stream(client, session, (12, 12), 5, seed=31)
            mirror_w, mirror_s = client.recolor_state(session)
            assert np.array_equal(mirror_w, current)
            assert np.array_equal(mirror_s, full_recolor(current, "GLF"))
            assert client.reseeds_used == 0

    def test_owner_kill_mid_stream_recovers_without_reseed(self, router):
        # The chaos contract: SIGKILL the worker owning an active session
        # mid delta-stream.  The journal under the shared spill dir lets
        # whichever worker next sees the session (failover sibling or the
        # restarted slot) replay it — the stream completes bit-identically
        # with ZERO client mirror re-seeds.
        with ServiceClient("127.0.0.1", router.port, timeout=30.0) as client:
            session = "durable-kill"
            current = self._stream(client, session, (14, 14), 3, seed=37)
            owner = f"w{rank_workers(session_routing_key(session), 2)[0]}"
            handle = next(
                h for h in router.router.pool.handles if h.worker_id == owner
            )
            handle.process.kill()
            handle.process.join(5.0)

            rng = np.random.default_rng(41)
            saw_recovery = False
            for _ in range(4):
                idx = rng.choice(current.size, size=3, replace=False)
                vals = rng.integers(1, 50, size=3, dtype=np.int64)
                response = client.recolor_delta(session, idx, vals)
                assert response.ok, response.error
                saw_recovery = saw_recovery or response.recovered
                current.ravel()[idx] = vals
            assert saw_recovery
            assert client.reseeds_used == 0

            mirror_w, mirror_s = client.recolor_state(session)
            assert np.array_equal(mirror_w, current)
            assert np.array_equal(mirror_s, full_recolor(current, "GLF"))
            assert client.metrics()["fleet"]["counters"].get(
                "session_recoveries", 0
            ) >= 1
