"""Versioned (``"api": 1``) protocol frames: canonical shape, legacy
compatibility, tiled routing, and refusal of unknown versions."""

import numpy as np
import pytest

from repro.service.protocol import (
    PROTOCOL_API_VERSION,
    ColorRequest,
    ProtocolError,
    request_from_wire,
    request_to_wire,
)


def _weights(shape=(4, 4), seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(1, 50, size=shape, dtype=np.int64)


def _frame(**overrides):
    weights = overrides.pop("weights", _weights())
    message = {
        "op": "color",
        "shape": list(weights.shape),
        "weights": weights.ravel().tolist(),
        "algorithm": overrides.pop("algorithm", "GLL"),
    }
    message.update(overrides)
    return message


class TestCanonicalFrames:
    def test_encoder_emits_api_version(self):
        wire = request_to_wire(ColorRequest(weights=_weights(), algorithm="GLL"))
        assert wire["api"] == PROTOCOL_API_VERSION
        assert "options" not in wire  # legacy vocabulary is no longer emitted

    def test_round_trip_preserves_runtime_and_tiles(self):
        request = ColorRequest(
            weights=_weights(), algorithm="GLL",
            tiled=True, tile_shape=(2, 2), validate=True,
        )
        wire = request_to_wire(request)
        assert wire["runtime"] == "tiled"
        assert wire["tiles"] == [2, 2]
        decoded = request_from_wire(wire)
        assert decoded.tiled and decoded.tile_shape == (2, 2)
        assert decoded.validate
        np.testing.assert_array_equal(decoded.weights, request.weights)

    @pytest.mark.parametrize("runtime,fast", [("auto", None),
                                              ("kernels", True),
                                              ("reference", False)])
    def test_runtime_maps_onto_fast(self, runtime, fast):
        decoded = request_from_wire(_frame(api=1, runtime=runtime))
        assert decoded.fast is fast
        assert not decoded.tiled

    def test_fast_round_trips_as_runtime(self):
        wire = request_to_wire(ColorRequest(weights=_weights(),
                                            algorithm="GLL", fast=True))
        assert wire["runtime"] == "kernels"
        assert request_from_wire(wire).fast is True

    def test_tiles_hint_alone_implies_tiled(self):
        decoded = request_from_wire(_frame(tiles=[2, 2]))
        assert decoded.tiled and decoded.tile_shape == (2, 2)

    def test_cache_key_ignores_the_runtime(self):
        # Bit-identity means tiled and monolithic requests must share
        # content-addressed cache entries.
        weights = _weights(seed=1)
        mono = request_from_wire(_frame(weights=weights, runtime="kernels"))
        tiled = request_from_wire(_frame(weights=weights, runtime="tiled"))
        assert mono.key == tiled.key


class TestLegacyFrames:
    def test_legacy_options_fast_still_decodes(self):
        decoded = request_from_wire(_frame(options={"fast": True,
                                                    "validate": True}))
        assert decoded.fast is True and decoded.validate
        assert not decoded.tiled

    def test_canonical_fields_beat_legacy_options(self):
        decoded = request_from_wire(
            _frame(api=1, runtime="reference", validate=False,
                   options={"fast": True, "validate": True})
        )
        assert decoded.fast is False
        assert not decoded.validate


class TestRefusals:
    def test_unknown_api_version_refused(self):
        with pytest.raises(ProtocolError, match="api version"):
            request_from_wire(_frame(api=2))

    def test_unknown_runtime_refused(self):
        with pytest.raises(ProtocolError, match="runtime"):
            request_from_wire(_frame(api=1, runtime="turbo"))

    def test_tiled_non_gll_refused(self):
        with pytest.raises(ProtocolError, match="GLL"):
            request_from_wire(_frame(algorithm="BDP", runtime="tiled"))

    def test_tiles_rank_mismatch_refused(self):
        with pytest.raises(ProtocolError, match="tiles"):
            request_from_wire(_frame(tiles=[2, 2, 2]))  # 2D grid, 3D hint

    def test_tiles_must_be_positive(self):
        with pytest.raises(ProtocolError, match="tiles"):
            request_from_wire(_frame(tiles=[0, 2]))
