"""Tests for the service wire protocol and content addressing."""

import numpy as np
import pytest

from repro.service.protocol import (
    ColorRequest,
    ProtocolError,
    ServedResult,
    content_key,
    decode_message,
    encode_message,
    request_from_wire,
    request_to_wire,
    result_to_wire,
)


class TestContentKey:
    def test_deterministic(self):
        w = np.arange(12).reshape(3, 4)
        assert content_key(w, "BDP") == content_key(w.copy(), "BDP")

    def test_algorithm_changes_key(self):
        w = np.ones((4, 4), dtype=np.int64)
        assert content_key(w, "BDP") != content_key(w, "GLL")

    def test_weights_change_key(self):
        w = np.ones((4, 4), dtype=np.int64)
        w2 = w.copy()
        w2[0, 0] = 2
        assert content_key(w, "BDP") != content_key(w2, "BDP")

    def test_shape_changes_key_same_bytes(self):
        # Same flat content, different grid shape — different instances.
        w = np.arange(12)
        assert content_key(w.reshape(3, 4), "BDP") != content_key(
            w.reshape(4, 3), "BDP"
        )

    def test_2d_vs_3d_disambiguated(self):
        w = np.arange(8)
        assert content_key(w.reshape(2, 4), "BDP") != content_key(
            w.reshape(2, 4, 1), "BDP"
        )

    def test_dtype_and_order_canonicalized(self):
        # Lists, int32, and Fortran-ordered arrays of equal content collide.
        w = np.arange(12, dtype=np.int32).reshape(3, 4)
        assert content_key(w, "GLL") == content_key(
            np.asfortranarray(w.astype(np.int64)), "GLL"
        )

    def test_options_do_not_affect_key(self):
        w = np.ones((4, 4), dtype=np.int64)
        a = ColorRequest(weights=w, algorithm="BDP", fast=True, validate=True)
        b = ColorRequest(weights=w, algorithm="BDP", fast=False, timeout=1.0,
                         request_id="other")
        assert a.key == b.key


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "ping", "id": "x"}
        assert decode_message(encode_message(message)) == message

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1,2,3]\n")

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{not json\n")


class TestRequestWire:
    def test_roundtrip_2d(self):
        w = np.random.default_rng(0).integers(0, 9, size=(5, 7))
        request = ColorRequest(weights=w, algorithm="GLL", validate=True,
                               timeout=1.5, request_id="r1")
        decoded = request_from_wire(request_to_wire(request))
        assert np.array_equal(decoded.weights, w)
        assert decoded.algorithm == "GLL"
        assert decoded.validate is True
        assert decoded.timeout == pytest.approx(1.5)
        assert decoded.request_id == "r1"
        assert decoded.key == request.key

    def test_roundtrip_3d(self):
        w = np.random.default_rng(1).integers(0, 9, size=(3, 4, 5))
        request = ColorRequest(weights=w, algorithm="BDP", fast=True)
        decoded = request_from_wire(request_to_wire(request))
        assert decoded.weights.shape == (3, 4, 5)
        assert decoded.fast is True
        assert decoded.group == ((3, 4, 5), "BDP")

    @pytest.mark.parametrize(
        "patch,match",
        [
            ({"shape": [4]}, "2D or 3D"),
            ({"shape": "4x4"}, "positive integers"),
            ({"shape": [4, 0]}, "positive integers"),
            ({"weights": [1, 2, 3]}, "expected 16 weights"),
            ({"weights": "zzz"}, "flat list"),
            ({"algorithm": ""}, "algorithm"),
            ({"algorithm": 7}, "algorithm"),
            ({"timeout_ms": -5}, "timeout_ms"),
            ({"options": [1]}, "options"),
            ({"options": {"fast": "yes"}}, "fast"),
        ],
    )
    def test_invalid_fields_rejected(self, patch, match):
        w = np.ones((4, 4), dtype=np.int64)
        message = request_to_wire(ColorRequest(weights=w, algorithm="BDP"))
        message.update(patch)
        with pytest.raises(ProtocolError, match=match):
            request_from_wire(message)

    def test_negative_weights_rejected(self):
        message = {
            "op": "color",
            "shape": [2, 2],
            "weights": [1, -1, 1, 1],
            "algorithm": "BDP",
        }
        with pytest.raises(ProtocolError, match="non-negative"):
            request_from_wire(message)


class TestResultWire:
    def test_ok_result(self):
        starts = np.array([0, 1, 2, 3], dtype=np.int64)
        result = ServedResult(status="ok", starts=starts, maxcolor=7,
                              source="computed", compute_seconds=0.01,
                              batch_size=4)
        message = result_to_wire(result, "abc", extra={"total_ms": 3.0})
        assert message["id"] == "abc"
        assert message["starts"] == [0, 1, 2, 3]
        assert message["maxcolor"] == 7
        assert message["source"] == "computed"
        assert message["batch_size"] == 4
        assert message["total_ms"] == 3.0

    def test_error_result(self):
        message = result_to_wire(
            ServedResult(status="error", error="boom"), "abc"
        )
        assert message == {"id": "abc", "status": "error", "error": "boom"}
