"""Unit + e2e tests of recolor-session durability (WAL, checkpoints, replay).

The contract under test: any session state the server has *acknowledged*
can be rebuilt bit-identically from the spill directory alone — through a
torn trailing append, an injected torn/corrupt write, a checkpoint that
failed verification, or a process that simply vanished.  Recovery replays
the same incremental-engine calls the live server made, so bit-identity
follows from the engine's proven determinism.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.incremental.engine import full_recolor
from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import (
    InjectedFault,
    clear_plan,
    install_plan,
    parse_fault_spec,
)
from repro.runtime.config import DurabilityConfig, RuntimeConfig
from repro.service.durability import SessionDurability, session_stem
from repro.service.sessions import RecolorSession, SessionStore


def _grid(shape, seed=0):
    return np.random.default_rng(seed).integers(
        1, 50, size=shape, dtype=np.int64
    )


def _session(session_id, weights, algorithm="GLF", deltas_applied=0):
    starts = full_recolor(weights, algorithm)
    return RecolorSession(
        session_id=session_id,
        algorithm=algorithm,
        weights=weights,
        starts=starts,
        maxcolor=int((starts + weights).max()),
        created=0.0,
        touched=0.0,
        deltas_applied=deltas_applied,
    )


def _stream(store, session_id, weights, deltas, algorithm="GLF", seed=7):
    """Seed + ``deltas`` sparse updates through the WAL; final weights."""
    session = _session(session_id, weights, algorithm)
    store.record_seed(session)
    rng = np.random.default_rng(seed)
    current = weights.copy()
    for seq in range(1, deltas + 1):
        idx = rng.choice(current.size, size=3, replace=False)
        vals = rng.integers(1, 50, size=3, dtype=np.int64)
        store.record_delta(session_id, seq, idx, vals)
        current.ravel()[idx] = vals
        session.deltas_applied = seq
        session.weights = current.copy()
        session.starts = full_recolor(current, algorithm)
        session.maxcolor = int((session.starts + current).max())
    return session, current


@pytest.fixture()
def store(tmp_path):
    return SessionDurability(
        tmp_path, DurabilityConfig(checkpoint_interval=0)
    )


class TestJournalReplay:
    def test_seed_and_deltas_recover_bit_identically(self, store):
        weights = _grid((10, 10), seed=1)
        _, final = _stream(store, "s", weights, deltas=5)
        recovered = store.recover("s")
        assert recovered is not None
        assert recovered.deltas_applied == 5
        assert np.array_equal(recovered.weights, final)
        assert np.array_equal(
            recovered.starts, full_recolor(final, "GLF")
        )
        assert recovered.maxcolor == int(
            (recovered.starts + final).max()
        )

    def test_unknown_session_recovers_to_none(self, store):
        assert store.recover("never-seen") is None

    def test_duplicate_records_are_idempotent(self, store):
        # A client re-send after a failed ack journals the same seq twice;
        # replay must apply it once.
        weights = _grid((8, 8), seed=2)
        session, final = _stream(store, "s", weights, deltas=3)
        with store.journal_path("s").open("rb") as fh:
            lines = fh.read().splitlines()
        last = json.loads(lines[-1])
        store.record_delta("s", last["seq"], last["idx"], last["weights"])
        recovered = store.recover("s")
        assert recovered.deltas_applied == 3
        assert np.array_equal(recovered.weights, final)

    def test_reseed_resets_the_epoch(self, store):
        w1 = _grid((8, 8), seed=3)
        _stream(store, "s", w1, deltas=4)
        w2 = _grid((6, 6), seed=4)
        session2, final2 = _stream(store, "s", w2, deltas=2)
        recovered = store.recover("s")
        assert recovered.weights.shape == (6, 6)
        assert np.array_equal(recovered.weights, final2)
        assert recovered.deltas_applied == 2

    def test_3d_session_recovers(self, store):
        weights = _grid((4, 5, 6), seed=5)
        _, final = _stream(store, "s3d", weights, deltas=3, algorithm="GLL")
        recovered = store.recover("s3d")
        assert np.array_equal(
            recovered.starts, full_recolor(final, "GLL")
        )


class TestCheckpoints:
    def test_checkpoint_truncates_journal_and_recovers(self, tmp_path):
        store = SessionDurability(
            tmp_path, DurabilityConfig(checkpoint_interval=2)
        )
        weights = _grid((9, 9), seed=6)
        session, final = _stream(store, "s", weights, deltas=2)
        assert store.maybe_checkpoint(session)
        assert store.journal_path("s").stat().st_size == 0
        assert store.checkpoint_path("s").exists()
        recovered = store.recover("s")
        assert recovered.source == "checkpoint"
        assert recovered.deltas_applied == 2
        assert np.array_equal(recovered.weights, final)
        assert np.array_equal(
            recovered.starts, full_recolor(final, "GLF")
        )

    def test_deltas_after_checkpoint_replay_on_top(self, tmp_path):
        store = SessionDurability(
            tmp_path, DurabilityConfig(checkpoint_interval=2)
        )
        weights = _grid((9, 9), seed=7)
        session, current = _stream(store, "s", weights, deltas=2)
        assert store.maybe_checkpoint(session)
        rng = np.random.default_rng(11)
        for seq in (3, 4, 5):
            idx = rng.choice(current.size, size=2, replace=False)
            vals = rng.integers(1, 50, size=2, dtype=np.int64)
            store.record_delta("s", seq, idx, vals)
            current.ravel()[idx] = vals
        recovered = store.recover("s")
        assert recovered.source == "journal"
        assert recovered.deltas_applied == 5
        assert np.array_equal(recovered.weights, current)
        assert np.array_equal(
            recovered.starts, full_recolor(current, "GLF")
        )

    def test_damaged_checkpoint_is_ignored_journal_wins(self, store):
        weights = _grid((8, 8), seed=8)
        _, final = _stream(store, "s", weights, deltas=3)
        # Fabricate on-disk checkpoint damage (bit rot, torn write at the
        # OS level): the journal still holds the whole epoch, so recovery
        # must ignore the checkpoint and replay from the seed record.
        store.checkpoint_path("s").write_text('{"seq": 99, "garbage')
        recovered = store.recover("s")
        assert recovered is not None
        assert recovered.deltas_applied == 3
        assert np.array_equal(recovered.weights, final)

    def test_corrupt_fault_keeps_journal_and_old_checkpoint(self, tmp_path):
        metrics = MetricsRegistry()
        store = SessionDurability(
            tmp_path,
            DurabilityConfig(checkpoint_interval=1),
            metrics=metrics,
        )
        weights = _grid((8, 8), seed=9)
        session, final = _stream(store, "s", weights, deltas=1)
        assert store.write_checkpoint(session)  # good checkpoint at seq 1
        good = store.checkpoint_path("s").read_bytes()
        rng = np.random.default_rng(12)
        idx = rng.choice(final.size, size=2, replace=False)
        vals = rng.integers(1, 50, size=2, dtype=np.int64)
        store.record_delta("s", 2, idx, vals)
        final.ravel()[idx] = vals
        session.deltas_applied = 2
        session.weights = final
        session.starts = full_recolor(final, "GLF")
        install_plan(
            parse_fault_spec(
                "seed=3;durability.checkpoint.write:corrupt=1.0,max=1"
            )
        )
        try:
            assert not store.write_checkpoint(session)
        finally:
            clear_plan()
        # Verification rejected the damaged snapshot BEFORE publishing:
        # the seq-1 checkpoint and the seq-2 journal record both survive.
        assert store.checkpoint_path("s").read_bytes() == good
        assert store.journal_path("s").stat().st_size > 0
        assert metrics.counter("checkpoint_verify_failures").value == 1
        recovered = store.recover("s")
        assert recovered.deltas_applied == 2
        assert np.array_equal(recovered.weights, final)

    def test_stale_fault_skips_compaction(self, tmp_path):
        store = SessionDurability(
            tmp_path, DurabilityConfig(checkpoint_interval=1)
        )
        weights = _grid((6, 6), seed=10)
        session, final = _stream(store, "s", weights, deltas=1)
        size_before = store.journal_path("s").stat().st_size
        install_plan(
            parse_fault_spec(
                "seed=3;durability.checkpoint.write:stale=1.0,max=1"
            )
        )
        try:
            assert not store.maybe_checkpoint(session)
        finally:
            clear_plan()
        assert not store.checkpoint_path("s").exists()
        assert store.journal_path("s").stat().st_size == size_before
        recovered = store.recover("s")
        assert np.array_equal(recovered.weights, final)


class TestTornRecords:
    def _journal_with_breakpoints(self, store, deltas=6):
        """A journaled stream plus the byte offset after each append."""
        weights = _grid((7, 7), seed=13)
        session = _session("torn", weights, "GLF")
        store.record_seed(session)
        path = store.journal_path("torn")
        offsets = [path.stat().st_size]
        states = [weights.copy()]
        rng = np.random.default_rng(14)
        current = weights.copy()
        for seq in range(1, deltas + 1):
            idx = rng.choice(current.size, size=2, replace=False)
            vals = rng.integers(1, 50, size=2, dtype=np.int64)
            store.record_delta("torn", seq, idx, vals)
            current.ravel()[idx] = vals
            offsets.append(path.stat().st_size)
            states.append(current.copy())
        return path, offsets, states

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_truncated_tail_recovers_last_complete_record(
        self, tmp_path_factory, data
    ):
        # Crash-during-append leaves an arbitrary prefix of the file.
        # Recovery must land exactly on the state after the last record
        # whose newline made it to disk.
        tmp_path = tmp_path_factory.mktemp("torn")
        store = SessionDurability(
            tmp_path, DurabilityConfig(checkpoint_interval=0)
        )
        path, offsets, states = self._journal_with_breakpoints(store)
        cut = data.draw(
            st.integers(min_value=offsets[0], max_value=offsets[-1]),
            label="truncation offset",
        )
        raw = path.read_bytes()[:cut]
        path.write_bytes(raw)
        # A record is complete once its JSON content is on disk — losing
        # only the trailing newline (cut == offset - 1) still parses.
        complete = max(i for i, off in enumerate(offsets) if off <= cut + 1)
        recovered = store.recover("torn")
        assert recovered is not None
        assert recovered.deltas_applied == complete
        assert np.array_equal(recovered.weights, states[complete])
        assert np.array_equal(
            recovered.starts, full_recolor(states[complete], "GLF")
        )

    def test_torn_append_fault_then_resend_recovers(self, tmp_path):
        metrics = MetricsRegistry()
        store = SessionDurability(
            tmp_path,
            DurabilityConfig(checkpoint_interval=0),
            metrics=metrics,
        )
        weights = _grid((7, 7), seed=15)
        session = _session("s", weights, "GLF")
        store.record_seed(session)
        idx = np.asarray([3, 9])
        vals = np.asarray([41, 17])
        install_plan(
            parse_fault_spec(
                "seed=5;durability.journal.append:torn=1.0,max=1"
            )
        )
        try:
            with pytest.raises(InjectedFault):
                store.record_delta("s", 1, idx, vals)
        finally:
            clear_plan()
        assert metrics.counter("journal_torn_appends").value == 1
        # The un-acked client re-sends; the append heals the torn tail
        # (inserts the missing newline) so the retry parses cleanly.
        store.record_delta("s", 1, idx, vals)
        recovered = store.recover("s")
        assert recovered.deltas_applied == 1
        expected = weights.copy()
        expected.ravel()[idx] = vals
        assert np.array_equal(recovered.weights, expected)
        assert metrics.counter("journal_skipped_records").value >= 1

    def test_truncated_checkpoint_falls_back(self, tmp_path):
        store = SessionDurability(
            tmp_path, DurabilityConfig(checkpoint_interval=1)
        )
        weights = _grid((6, 6), seed=16)
        session, final = _stream(store, "s", weights, deltas=1)
        # Keep a journal copy, checkpoint (truncates it), then restore the
        # journal and tear the checkpoint: recovery must fall back to the
        # journal epoch.
        journal = store.journal_path("s").read_bytes()
        assert store.write_checkpoint(session)
        raw = store.checkpoint_path("s").read_bytes()
        store.checkpoint_path("s").write_bytes(raw[: len(raw) // 2])
        store.journal_path("s").write_bytes(journal)
        recovered = store.recover("s")
        assert recovered is not None
        assert np.array_equal(recovered.weights, final)


class TestOfflineTools:
    def test_list_inspect_compact(self, tmp_path):
        store = SessionDurability(
            tmp_path, DurabilityConfig(checkpoint_interval=0)
        )
        weights = _grid((6, 6), seed=17)
        _, final = _stream(store, "offline", weights, deltas=4)
        listed = store.list_sessions()
        assert len(listed) == 1
        assert listed[0]["session"] == "offline"
        assert listed[0]["journal_deltas"] == 4
        assert listed[0]["stem"] == session_stem("offline")

        detail = store.inspect("offline")
        assert detail["recoverable"]
        assert detail["deltas_applied"] == 4
        assert detail["journal_seqs"] == [0, 1, 2, 3, 4]

        summary = store.compact("offline")
        assert summary["compacted"]
        assert store.journal_path("offline").stat().st_size == 0
        recovered = store.recover("offline")
        assert np.array_equal(recovered.weights, final)
        after = store.list_sessions()
        assert after[0]["checkpoint_verified"]
        assert after[0]["checkpoint_seq"] == 4

    def test_forget_removes_both_files(self, store):
        weights = _grid((5, 5), seed=18)
        session, _ = _stream(store, "gone", weights, deltas=1)
        store.write_checkpoint(session)
        store.forget("gone")
        assert not store.journal_path("gone").exists()
        assert not store.checkpoint_path("gone").exists()
        assert store.recover("gone") is None


class TestSessionStoreRecovery:
    def test_eviction_metrics_split_lru_vs_ttl(self):
        metrics = MetricsRegistry()
        state = {"now": 0.0}
        store = SessionStore(
            limit=1, ttl=10.0, clock=lambda: state["now"], metrics=metrics
        )
        weights = _grid((4, 4))
        starts = full_recolor(weights, "GLL")
        store.open("a", "GLL", weights, starts, 1)
        store.open("b", "GLL", weights, starts, 1)  # evicts "a" (LRU)
        assert metrics.counter("session_evictions_lru").value == 1
        assert metrics.counter("session_evictions_ttl").value == 0
        state["now"] = 99.0
        with pytest.raises(Exception):
            store.get("b")  # expired (TTL)
        assert metrics.counter("session_evictions_ttl").value == 1
        assert store.stats()["evicted"] == 1
        assert store.stats()["expired"] == 1

    def test_get_or_recover_replays_then_counts(self, tmp_path):
        metrics = MetricsRegistry()
        durability = SessionDurability(
            tmp_path, DurabilityConfig(checkpoint_interval=0)
        )
        weights = _grid((6, 6), seed=19)
        _, final = _stream(durability, "lost", weights, deltas=2)
        store = SessionStore(
            limit=4, ttl=100.0, metrics=metrics,
            recovery=durability.recover,
        )
        session, recovered = store.get_or_recover("lost")
        assert recovered
        assert session.deltas_applied == 2
        assert np.array_equal(session.weights, final)
        assert metrics.counter("session_recoveries").value == 1
        assert store.stats()["recovered"] == 1
        # Now held in memory: the second lookup is a plain hit.
        again, recovered_again = store.get_or_recover("lost")
        assert not recovered_again and again is session

    def test_get_or_recover_without_recovery_raises(self):
        from repro.service.sessions import UnknownSessionError

        store = SessionStore(limit=4, ttl=100.0)
        with pytest.raises(UnknownSessionError):
            store.get_or_recover("nope")


class TestServerEndToEnd:
    @pytest.fixture(params=["ndjson", "binary"])
    def wire(self, request):
        return request.param

    def test_recovered_flag_after_state_loss(self, tmp_path, wire):
        from repro.service.client import ServiceClient
        from repro.service.server import ServerConfig, ServerThread

        config = ServerConfig(
            port=0, spill_dir=str(tmp_path), default_timeout=20.0,
            runtime=RuntimeConfig(
                durability=DurabilityConfig(checkpoint_interval=3)
            ),
        )
        with ServerThread(config) as thread:
            with ServiceClient(
                "127.0.0.1", thread.port, timeout=30.0, wire=wire
            ) as c:
                weights = _grid((10, 10), seed=20)
                assert c.recolor_open("e2e", weights, "GLF").ok
                current = weights.copy()
                rng = np.random.default_rng(21)
                for _ in range(4):
                    idx = rng.choice(current.size, size=3, replace=False)
                    vals = rng.integers(1, 50, size=3, dtype=np.int64)
                    response = c.recolor_delta("e2e", idx, vals)
                    assert response.ok and not response.recovered
                    current.ravel()[idx] = vals
                # Simulate the crash: drop all in-memory session state.
                thread.service.sessions.drop("e2e")
                idx = rng.choice(current.size, size=3, replace=False)
                vals = rng.integers(1, 50, size=3, dtype=np.int64)
                response = c.recolor_delta("e2e", idx, vals, reseed=False)
                assert response.ok, response.error
                assert response.recovered
                assert c.reseeds_used == 0
                current.ravel()[idx] = vals
                mirror_w, mirror_s = c.recolor_state("e2e")
                assert np.array_equal(mirror_w, current)
                assert np.array_equal(
                    mirror_s, full_recolor(current, "GLF")
                )
                snap = c.metrics()
                assert snap["counters"]["session_recoveries"] == 1
                assert snap["sessions"]["recovered"] == 1
                assert snap["sessions"]["durability"]["journals"] >= 1
                assert (
                    snap["histograms"]["journal_replay_seconds"]["count"]
                    == 1
                )

    def test_durability_off_preserves_typed_unknown_session(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import ServerConfig, ServerThread

        config = ServerConfig(
            port=0, spill_dir=str(tmp_path), default_timeout=20.0,
            runtime=RuntimeConfig(
                durability=DurabilityConfig(enabled=False)
            ),
        )
        with ServerThread(config) as thread:
            assert thread.service.durability is None
            with ServiceClient("127.0.0.1", thread.port, timeout=30.0) as c:
                weights = _grid((6, 6), seed=22)
                assert c.recolor_open("off", weights, "GLF").ok
                thread.service.sessions.drop("off")
                response = c.recolor_delta("off", [0], [1], reseed=False)
                assert response.unknown_session
