"""Tests for the service metrics registry."""

import json

from repro.service.metrics import Histogram, MetricsRegistry


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.percentile(50) == 0.0
        assert h.summary()["count"] == 0

    def test_percentiles_bracket_samples(self):
        h = Histogram()
        for ms in range(1, 101):  # 1..100 ms
            h.observe(ms / 1000.0)
        p50 = h.percentile(50)
        p99 = h.percentile(99)
        # Bucket resolution is 25%, so brackets are generous but ordered.
        assert 0.035 <= p50 <= 0.07
        assert 0.08 <= p99 <= 0.1  # clamped to the exact max
        assert p50 <= h.percentile(90) <= p99

    def test_max_clamps_percentile(self):
        h = Histogram()
        h.observe(0.005)
        assert h.percentile(99) == 0.005

    def test_mean_min_max(self):
        h = Histogram()
        h.observe(0.01)
        h.observe(0.03)
        summary = h.summary()
        assert summary["mean"] == (0.01 + 0.03) / 2
        assert summary["min"] == 0.01
        assert summary["max"] == 0.03


class TestRegistry:
    def test_lazily_created_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.counter("requests").inc()
        registry.gauge("depth").set(7)
        registry.histogram("latency").observe(0.002)
        snap = registry.snapshot()
        assert snap["counters"]["requests"] == 4
        assert snap["gauges"]["depth"] == 7
        assert snap["histograms"]["latency"]["count"] == 1

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.histogram("latency").observe(0.5)
        registry.counter("n").inc()
        json.dumps(registry.snapshot())

    def test_gauge_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        gauge.add(2)
        gauge.add(-1)
        assert gauge.value == 1
