"""Tests for the content-addressed result cache and its disk spill."""

import json

import numpy as np

from repro.service.cache import CacheEntry, ResultCache


def _entry(n: int) -> CacheEntry:
    return CacheEntry(
        starts=np.arange(n, dtype=np.int64),
        maxcolor=n,
        algorithm="GLL",
        compute_seconds=0.001,
    )


class TestLRU:
    def test_hit_and_miss_counters(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", _entry(3))
        assert cache.get("a").maxcolor == 3
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", _entry(1))
        cache.put("b", _entry(2))
        cache.get("a")  # refresh a: b becomes the LRU victim
        cache.put("c", _entry(3))
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert cache.stats()["evictions"] == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", _entry(1))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_refresh_does_not_grow(self):
        cache = ResultCache(capacity=2)
        cache.put("a", _entry(1))
        cache.put("a", _entry(1))
        assert len(cache) == 1


class TestSpill:
    def test_evicted_entry_served_from_spill(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        cache = ResultCache(capacity=1, spill_path=spill)
        cache.put("a", _entry(5))
        cache.put("b", _entry(6))  # evicts a to disk
        assert spill.exists()
        entry = cache.get("a")  # spill hit, promoted back to memory
        assert entry is not None and entry.maxcolor == 5
        assert np.array_equal(entry.starts, np.arange(5))
        stats = cache.stats()
        assert stats["spill_hits"] == 1
        # Promoting 'a' back into the capacity-1 cache spilled 'b' as well.
        assert stats["spilled"] == 2
        cache.close()

    def test_spill_preserves_shape(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        cache = ResultCache(capacity=1, spill_path=spill)
        grid = CacheEntry(
            starts=np.arange(6, dtype=np.int64).reshape(2, 3),
            maxcolor=9,
            algorithm="BDP",
        )
        cache.put("g", grid)
        cache.put("x", _entry(1))  # evict g
        restored = cache.get("g")
        assert restored.starts.shape == (2, 3)
        cache.close()

    def test_warm_start_indexes_existing_spill(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        first = ResultCache(capacity=1, spill_path=spill)
        first.put("a", _entry(4))
        first.put("b", _entry(5))
        first.close()

        second = ResultCache(capacity=4, spill_path=spill)
        assert second.load_spill() == 1  # only 'a' was spilled
        entry = second.get("a")
        assert entry is not None and entry.maxcolor == 4
        second.close()

    def test_warm_start_tolerates_truncated_tail(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        cache = ResultCache(capacity=1, spill_path=spill)
        cache.put("a", _entry(4))
        cache.put("b", _entry(5))
        cache.close()
        with spill.open("a") as handle:
            handle.write('{"key": "c", "starts"')  # torn append
        fresh = ResultCache(capacity=4, spill_path=spill)
        assert fresh.load_spill() == 1
        assert fresh.get("a") is not None
        fresh.close()

    def test_no_spill_without_path(self):
        cache = ResultCache(capacity=1)
        cache.put("a", _entry(1))
        cache.put("b", _entry(2))
        assert cache.get("a") is None
        assert cache.stats()["spilled"] == 0

    def test_spill_line_is_valid_json(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        cache = ResultCache(capacity=1, spill_path=spill)
        cache.put("a", _entry(2))
        cache.put("b", _entry(3))
        cache.close()
        lines = [l for l in spill.read_text().splitlines() if l.strip()]
        assert len(lines) == 1
        obj = json.loads(lines[0])
        assert obj["key"] == "a" and obj["maxcolor"] == 2
