"""Tests for the content-addressed result cache and its disk spill."""

import json

import numpy as np
import pytest

from repro.service.cache import CacheEntry, ResultCache


def _entry(n: int) -> CacheEntry:
    return CacheEntry(
        starts=np.arange(n, dtype=np.int64),
        maxcolor=n,
        algorithm="GLL",
        compute_seconds=0.001,
    )


class TestLRU:
    def test_hit_and_miss_counters(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", _entry(3))
        assert cache.get("a").maxcolor == 3
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", _entry(1))
        cache.put("b", _entry(2))
        cache.get("a")  # refresh a: b becomes the LRU victim
        cache.put("c", _entry(3))
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert cache.stats()["evictions"] == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", _entry(1))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_refresh_does_not_grow(self):
        cache = ResultCache(capacity=2)
        cache.put("a", _entry(1))
        cache.put("a", _entry(1))
        assert len(cache) == 1


class TestSpill:
    def test_evicted_entry_served_from_spill(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        cache = ResultCache(capacity=1, spill_path=spill)
        cache.put("a", _entry(5))
        cache.put("b", _entry(6))  # evicts a to disk
        assert spill.exists()
        entry = cache.get("a")  # spill hit, promoted back to memory
        assert entry is not None and entry.maxcolor == 5
        assert np.array_equal(entry.starts, np.arange(5))
        stats = cache.stats()
        assert stats["spill_hits"] == 1
        # Promoting 'a' back into the capacity-1 cache spilled 'b' as well.
        assert stats["spilled"] == 2
        cache.close()

    def test_spill_preserves_shape(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        cache = ResultCache(capacity=1, spill_path=spill)
        grid = CacheEntry(
            starts=np.arange(6, dtype=np.int64).reshape(2, 3),
            maxcolor=9,
            algorithm="BDP",
        )
        cache.put("g", grid)
        cache.put("x", _entry(1))  # evict g
        restored = cache.get("g")
        assert restored.starts.shape == (2, 3)
        cache.close()

    def test_warm_start_indexes_existing_spill(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        first = ResultCache(capacity=1, spill_path=spill)
        first.put("a", _entry(4))
        first.put("b", _entry(5))
        first.close()

        second = ResultCache(capacity=4, spill_path=spill)
        assert second.load_spill() == 1  # only 'a' was spilled
        entry = second.get("a")
        assert entry is not None and entry.maxcolor == 4
        second.close()

    def test_warm_start_tolerates_truncated_tail(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        cache = ResultCache(capacity=1, spill_path=spill)
        cache.put("a", _entry(4))
        cache.put("b", _entry(5))
        cache.close()
        with spill.open("a") as handle:
            handle.write('{"key": "c", "starts"')  # torn append
        fresh = ResultCache(capacity=4, spill_path=spill)
        assert fresh.load_spill() == 1
        assert fresh.get("a") is not None
        fresh.close()

    def test_no_spill_without_path(self):
        cache = ResultCache(capacity=1)
        cache.put("a", _entry(1))
        cache.put("b", _entry(2))
        assert cache.get("a") is None
        assert cache.stats()["spilled"] == 0

    def test_spill_line_is_valid_json(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        cache = ResultCache(capacity=1, spill_path=spill)
        cache.put("a", _entry(2))
        cache.put("b", _entry(3))
        cache.close()
        lines = [l for l in spill.read_text().splitlines() if l.strip()]
        assert len(lines) == 1
        obj = json.loads(lines[0])
        assert obj["key"] == "a" and obj["maxcolor"] == 2


class TestDirSpill:
    """The cross-worker shared L2 tier: one atomic JSON file per entry."""

    def test_path_and_dir_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ResultCache(
                capacity=2,
                spill_path=tmp_path / "a.jsonl",
                spill_dir=tmp_path / "l2",
            )

    def test_write_through_on_put(self, tmp_path):
        cache = ResultCache(capacity=4, spill_dir=tmp_path / "l2")
        cache.put("aa", _entry(3))
        files = list((tmp_path / "l2").glob("*.json"))
        assert [f.stem for f in files] == ["aa"]
        assert json.loads(files[0].read_text())["maxcolor"] == 3
        assert not list((tmp_path / "l2").glob(".*tmp"))  # atomic rename

    def test_sibling_cache_reads_cold_entry(self, tmp_path):
        writer = ResultCache(capacity=4, spill_dir=tmp_path / "l2")
        writer.put("k1", _entry(7))
        reader = ResultCache(capacity=4, spill_dir=tmp_path / "l2")
        entry = reader.get("k1")  # never put here — read from the dir tier
        assert entry is not None and entry.maxcolor == 7
        assert np.array_equal(entry.starts, np.arange(7))
        assert reader.stats()["spill_hits"] == 1
        # Promoted to this cache's memory: the second read is a plain hit.
        reader.get("k1")
        assert reader.stats()["spill_hits"] == 1

    def test_warm_start_indexes_directory(self, tmp_path):
        first = ResultCache(capacity=4, spill_dir=tmp_path / "l2")
        first.put("k1", _entry(2))
        first.put("k2", _entry(3))
        second = ResultCache(capacity=4, spill_dir=tmp_path / "l2")
        assert second.load_spill() == 2
        assert second.stats()["spill_index_size"] == 2

    def test_corrupt_file_is_counted_and_healed(self, tmp_path):
        cache = ResultCache(capacity=1, spill_dir=tmp_path / "l2")
        cache.put("bad", _entry(4))
        (tmp_path / "l2" / "bad.json").write_text('{"key": "bad", "sta')
        cache.put("evictor", _entry(5))  # evict "bad" from memory
        assert cache.get("bad") is None  # damaged file → miss, not a crash
        assert cache.stats()["spill_read_errors"] == 1
        assert not (tmp_path / "l2" / "bad.json").exists()  # unlinked
        # A rewrite heals the key (the guard set forgot the damaged file).
        cache.put("bad", _entry(4))
        assert (tmp_path / "l2" / "bad.json").exists()

    def test_key_mismatch_rejected(self, tmp_path):
        cache = ResultCache(capacity=1, spill_dir=tmp_path / "l2")
        cache.put("honest", _entry(2))
        # A file renamed to another key must not poison that key.
        (tmp_path / "l2" / "liar.json").write_text(
            (tmp_path / "l2" / "honest.json").read_text()
        )
        fresh = ResultCache(capacity=1, spill_dir=tmp_path / "l2")
        fresh.load_spill()
        assert fresh.get("liar") is None
        assert fresh.stats()["spill_read_errors"] == 1

    def test_max_spill_entries_bounds_the_directory(self, tmp_path):
        cache = ResultCache(
            capacity=8, spill_dir=tmp_path / "l2", max_spill_entries=2
        )
        for i in range(5):
            cache.put(f"k{i}", _entry(i + 1))
        assert len(list((tmp_path / "l2").glob("*.json"))) == 2
