"""End-to-end tests of the coloring service over real sockets.

A :class:`~repro.service.server.ServerThread` is started per test class on
an ephemeral port; clients exercise the full protocol path: admission,
micro-batching, caching, coalescing, deadlines, metrics, and graceful
shutdown — and every served coloring is checked bit-for-bit against a
direct :func:`~repro.core.algorithms.registry.color_with` call.
"""

import asyncio
import socket
import time

import numpy as np
import pytest

from repro.core.algorithms.registry import color_with
from repro.core.problem import IVCInstance
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.loadgen import build_workload, run_loadgen
from repro.service.server import ServerConfig, ServerThread


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(
        port=0, max_batch=16, batch_window=0.002, queue_limit=64,
        cache_size=32, compute_threads=2, default_timeout=20.0,
    )
    with ServerThread(config) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServiceClient("127.0.0.1", server.port, timeout=30.0) as c:
        yield c


def _grid(shape, seed=0):
    return np.random.default_rng(seed).integers(1, 50, size=shape, dtype=np.int64)


class TestServing:
    def test_ping(self, client):
        assert client.ping() < 5.0

    def test_2d_bit_identical_to_direct(self, client):
        weights = _grid((9, 11), seed=1)
        response = client.color(weights, "BDP")
        assert response.ok and response.status == "ok"
        direct = color_with(IVCInstance.from_grid_2d(weights), "BDP")
        assert np.array_equal(response.starts.ravel(), direct.starts)
        assert response.maxcolor == direct.maxcolor
        assert response.starts.shape == (9, 11)

    def test_3d_bit_identical_to_direct(self, client):
        weights = _grid((4, 5, 6), seed=2)
        response = client.color(weights, "GLL")
        assert response.ok
        direct = color_with(IVCInstance.from_grid_3d(weights), "GLL")
        assert np.array_equal(response.starts.ravel(), direct.starts)

    def test_every_registry_algorithm_served(self, client):
        from repro.core.algorithms.registry import REGISTRY

        weights = _grid((6, 6), seed=3)
        instance = IVCInstance.from_grid_2d(weights)
        for name in REGISTRY.select(instance, include_extensions=True):
            response = client.color(weights, name)
            assert response.ok, (name, response.error)
            direct = color_with(instance, name)
            assert np.array_equal(response.starts.ravel(), direct.starts), name

    def test_repeat_request_hits_cache(self, client):
        weights = _grid((8, 8), seed=4)
        first = client.color(weights, "GLF")
        again = client.color(weights, "GLF")
        assert first.ok and again.ok
        assert again.cached and again.source == "cache"
        assert np.array_equal(first.starts, again.starts)

    def test_unknown_algorithm_is_typed_error(self, client):
        response = client.color(_grid((4, 4)), "BPD")
        assert response.status == "error"
        assert "did you mean" in response.error and "BDP" in response.error

    def test_invalid_request_rejected(self, client):
        response = client._roundtrip(
            {"op": "color", "id": "x", "shape": [2, 2],
             "weights": [1, -2, 3, 4], "algorithm": "GLL"}
        )
        assert response["status"] == "invalid"
        assert "non-negative" in response["error"]

    def test_unknown_op_rejected(self, server):
        # The NDJSON wire carries arbitrary op strings; the server answers
        # them with a typed ``invalid`` status.
        with ServiceClient("127.0.0.1", server.port, wire="ndjson") as c:
            response = c._roundtrip({"op": "frobnicate", "id": "y"})
        assert response["status"] == "invalid"
        # The binary wire has a fixed opcode set, so an unknown op is a
        # typed client-side error before any bytes are sent.
        with ServiceClient("127.0.0.1", server.port, wire="binary") as c:
            with pytest.raises(ServiceError, match="frobnicate"):
                c._roundtrip({"op": "frobnicate", "id": "y"})

    def test_tiled_request_bit_identical_and_shares_cache(self, client):
        weights = _grid((14, 12), seed=11)
        tiled = client.color(weights, "GLL", tiles=(5, 5))
        assert tiled.ok, tiled.error
        direct = color_with(IVCInstance.from_grid_2d(weights), "GLL")
        assert np.array_equal(tiled.starts.ravel(), direct.starts)
        assert tiled.maxcolor == direct.maxcolor
        # Bit-identity means the monolithic phrasing of the same grid is a
        # cache hit — tiled and direct requests share entries by design.
        again = client.color(weights, "GLL")
        assert again.ok and again.source == "cache"

    def test_tiled_non_gll_is_invalid(self, client):
        response = client.color(_grid((6, 6), seed=12), "BDP", tiles=(3, 3))
        assert response.status == "invalid"
        assert "GLL" in response.error

    def test_queued_deadline_expires(self, client):
        # A microscopic deadline expires inside the batch window.
        response = client.color(_grid((5, 5), seed=9), "GLL",
                                timeout=1e-6, request_id="doomed")
        assert response.status == "timeout"

    def test_metrics_snapshot_shape(self, client):
        client.color(_grid((7, 7), seed=5), "GLL")
        snap = client.metrics()
        assert snap["counters"]["requests_total"] >= 1
        assert "request_latency" in snap["histograms"]
        for field in ("p50", "p99", "count"):
            assert field in snap["histograms"]["request_latency"]
        assert "hit_rate" in snap["cache"]
        assert set(snap["substrate"]) == {"geometries", "substrates"}
        assert "hits" in snap["substrate"]["substrates"]
        assert snap["server"]["queue_limit"] == 64

    def test_binary_ndjson_and_direct_api_bit_identical(self, server):
        # The acceptance bar of the dual-wire tier: the same grid served
        # over binary frames, over NDJSON, and colored in-process via
        # repro.api.color must agree bit for bit.
        from repro.api import color as api_color

        weights = _grid((13, 9), seed=21)
        with ServiceClient("127.0.0.1", server.port, wire="binary") as c:
            binary = c.color(weights, "GLL")
            assert c.wire == "binary"
        with ServiceClient("127.0.0.1", server.port, wire="ndjson") as c:
            ndjson = c.color(weights, "GLL")
            assert c.wire == "ndjson"
        direct = api_color(weights, algorithm="GLL")
        assert binary.ok and ndjson.ok
        assert np.array_equal(binary.starts, ndjson.starts)
        assert np.array_equal(binary.starts, np.asarray(direct.starts))
        assert binary.maxcolor == ndjson.maxcolor == direct.maxcolor

    def test_response_carries_worker_identity(self, client):
        response = client.color(_grid((5, 5), seed=22), "GLL")
        assert response.ok and response.worker == "w0"
        snap = client.metrics()
        assert snap["server"]["worker_id"] == "w0"
        assert "frames/v1" in snap["server"]["wire_protocols"]
        assert "ndjson" in snap["server"]["wire_protocols"]

    def test_torn_binary_frame_counted_not_fatal(self, server):
        from repro.service.frames import OP_COLOR, encode_frame

        raw = encode_frame(OP_COLOR, {"op": "color", "id": "torn"}, b"\x01" * 64)
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(raw[: len(raw) - 10])  # die mid-frame
        time.sleep(0.2)
        with ServiceClient("127.0.0.1", server.port) as c:
            snap = c.metrics()
        assert snap["counters"].get("torn_frames", 0) >= 1

    def test_torn_ndjson_line_counted_not_fatal(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b'{"op": "ping", "id": "torn-line"')  # no newline
        time.sleep(0.2)
        with ServiceClient("127.0.0.1", server.port) as c:
            snap = c.metrics()
        assert snap["counters"].get("torn_lines", 0) >= 1

    def test_coalescing_identical_concurrent_requests(self, server):
        weights = _grid((10, 10), seed=6)

        async def burst():
            clients = [AsyncServiceClient("127.0.0.1", server.port) for _ in range(6)]
            for c in clients:
                await c.connect()
            try:
                return await asyncio.gather(
                    *(c.color(weights, "GZO") for c in clients)
                )
            finally:
                for c in clients:
                    await c.close()

        responses = asyncio.run(burst())
        assert all(r.ok for r in responses)
        starts = {r.starts.tobytes() for r in responses}
        assert len(starts) == 1  # all identical
        direct = color_with(IVCInstance.from_grid_2d(weights), "GZO")
        assert responses[0].starts.ravel().tolist() == direct.starts.tolist()
        # At most one computation; the rest were coalesced or cache hits.
        computed = [r for r in responses if r.source == "computed"]
        assert len(computed) <= 1


class TestBackpressure:
    def test_zero_queue_limit_rejects_immediately(self):
        config = ServerConfig(port=0, queue_limit=0, batch_window=0.0)
        with ServerThread(config) as thread:
            with ServiceClient("127.0.0.1", thread.port) as client:
                response = client.color(_grid((4, 4)), "GLL")
                assert response.status == "overloaded"
                assert "queue full" in response.error
                snap = client.metrics()
                assert snap["counters"]["rejected_overload"] == 1


class TestLoadgen:
    def test_verified_burst(self, server):
        workload = build_workload(
            [(12, 12), (6, 6, 4)], distinct=4, algorithm="GLL", seed=7
        )
        report = run_loadgen(
            "127.0.0.1", server.port, workload,
            requests=40, concurrency=4, verify=True, seed=7,
        )
        assert report.requests == 40
        assert report.ok == 40
        assert report.divergences == 0
        assert report.errors == 0
        assert report.cached > 0  # repeated-shape workload must hit the cache
        assert report.metrics["counters"]["responses_ok"] >= 40
        assert report.throughput_rps > 0
        assert report.wire == "binary"  # auto-negotiated against this server
        assert report.workers_seen == {"w0": 40}

    def test_zipf_schedule_is_skewed_and_deterministic(self, server):
        workload = build_workload([(8, 8)], distinct=6, algorithm="GLL", seed=3)
        kwargs = dict(
            requests=60, concurrency=2, seed=3, zipf=1.5, fetch_metrics=False,
        )
        first = run_loadgen("127.0.0.1", server.port, workload, **kwargs)
        second = run_loadgen("127.0.0.1", server.port, workload, **kwargs)
        assert first.zipf == second.zipf == 1.5
        assert first.ok == second.ok == 60
        # Same seed → byte-identical schedule → identical hit profile, and
        # the skew concentrates traffic: far fewer cold computes than the
        # pool has items' worth of uniform traffic would produce.
        assert first.cache_hit_rate > 0.5

    def test_ndjson_wire_pins_the_run(self, server):
        workload = build_workload([(6, 6)], distinct=2, algorithm="GLL", seed=4)
        report = run_loadgen(
            "127.0.0.1", server.port, workload,
            requests=10, concurrency=2, seed=4, wire="ndjson",
        )
        assert report.ok == 10
        assert report.wire == "ndjson" and report.wire_requested == "ndjson"

    def test_pipelined_bursts_stay_bit_identical(self, server):
        # pipeline=4: each connection writes 4 frames before its first
        # read; ordered responses must still pair with their requests,
        # which verify=True checks against direct colorings.
        workload = build_workload(
            [(9, 9), (5, 5, 3)], distinct=4, algorithm="GLL", seed=9
        )
        report = run_loadgen(
            "127.0.0.1", server.port, workload,
            requests=48, concurrency=3, verify=True, seed=9, pipeline=4,
        )
        assert report.pipeline == 4
        assert report.ok == 48
        assert report.divergences == 0
        assert report.errors == 0
        assert report.to_json()["pipeline"] == 4

    def test_pipelined_ndjson_also_works(self, server):
        workload = build_workload([(7, 7)], distinct=3, algorithm="GLL", seed=5)
        report = run_loadgen(
            "127.0.0.1", server.port, workload,
            requests=18, concurrency=2, verify=True, seed=5,
            pipeline=3, wire="ndjson",
        )
        assert report.ok == 18
        assert report.divergences == 0
        assert report.wire == "ndjson"


class TestGracefulShutdown:
    def test_shutdown_op_drains_and_stops(self):
        config = ServerConfig(port=0, cache_size=8)
        thread = ServerThread(config).start()
        port = thread.port
        with ServiceClient("127.0.0.1", port) as client:
            assert client.color(_grid((5, 5), seed=8), "GLL").ok
            client.shutdown()
        # The listener must go away shortly after the drain completes.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                probe = socket.create_connection(("127.0.0.1", port), timeout=0.5)
                probe.close()
                time.sleep(0.05)
            except OSError:
                break
        else:
            pytest.fail("server still accepting connections after shutdown")
        thread.stop()

    def test_spill_survives_restart(self, tmp_path):
        spill = tmp_path / "colorings.jsonl"
        weights = _grid((6, 7), seed=10)
        config = ServerConfig(port=0, cache_size=1, spill_path=str(spill))
        with ServerThread(config) as thread:
            with ServiceClient("127.0.0.1", thread.port) as client:
                first = client.color(weights, "GLL")
                client.color(_grid((6, 7), seed=11), "GLL")  # evict → spill
        assert spill.exists() and spill.stat().st_size > 0

        warm = ServerConfig(
            port=0, cache_size=4, spill_path=str(spill), warm_start=True
        )
        with ServerThread(warm) as thread:
            with ServiceClient("127.0.0.1", thread.port) as client:
                served = client.color(weights, "GLL")
                assert served.ok
                assert served.cached  # warm-started from the spill index
                assert np.array_equal(served.starts, first.starts)
