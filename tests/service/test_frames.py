"""Codec tests for the binary wire frames (:mod:`repro.service.frames`).

Three layers of assurance:

* **Property round-trips** — hypothesis-generated headers, payloads, keys,
  and flags survive ``encode_frame`` → ``decode_frame`` bit-for-bit, and
  color requests decode to the same validated :class:`ColorRequest` the
  NDJSON path produces (same content key, same weights).
* **Truncation/corruption fuzz** — a valid frame cut at *every* byte
  boundary raises the typed :class:`TornFrameError`; corrupted preambles
  raise :class:`FrameError`; neither ever hangs or escapes as an untyped
  exception.
* **Differential serving** — the same grid served over binary frames,
  over NDJSON, and colored directly via :func:`repro.api.color` is
  bit-identical (the acceptance bar of the scaled tier).
"""

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import frames
from repro.service.frames import (
    FLAG_TRAILING_NEWLINE,
    FRAME_MAGIC,
    FRAME_VERSION,
    KEY_SIZE,
    OP_COLOR,
    OP_HELLO,
    OP_PING,
    OP_RESPONSE,
    PREAMBLE_SIZE,
    Frame,
    FrameError,
    TornFrameError,
    decode_color_request,
    decode_frame,
    decode_preamble,
    encode_color_request,
    encode_frame,
    encode_hello,
    encode_hello_ok,
    encode_result,
    read_frame,
    response_to_message,
)
from repro.service.protocol import (
    ProtocolError,
    ServedResult,
    request_from_wire,
)

# JSON-representable header values (what real headers are made of).
_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=32),
)
_headers = st.dictionaries(
    st.text(min_size=1, max_size=16),
    st.one_of(_json_scalars, st.lists(_json_scalars, max_size=4)),
    max_size=8,
)
_keys = st.one_of(
    st.just(""),
    st.binary(min_size=KEY_SIZE, max_size=KEY_SIZE).map(bytes.hex),
)
_opcodes = st.sampled_from(frames._OPCODES)


class TestFrameRoundTrip:
    @given(
        opcode=_opcodes,
        header=_headers,
        payload=st.binary(max_size=256),
        key=_keys,
        newline=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_identity(self, opcode, header, payload, key, newline):
        flags = FLAG_TRAILING_NEWLINE if newline else 0
        raw = encode_frame(opcode, header, payload, key=key, flags=flags)
        frame = decode_frame(raw)
        assert frame.opcode == opcode
        assert frame.flags == flags
        assert frame.payload == payload
        assert frame.header == json.loads(json.dumps(header))
        # All-zero keys decode to "" by design (zeros mean "no key").
        expected_key = "" if key == "00" * KEY_SIZE else key
        assert frame.key == expected_key

    @given(
        opcode=_opcodes,
        header=_headers,
        payload=st.binary(max_size=256),
        newline=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_stream_read_matches_decode(self, opcode, header, payload, newline):
        flags = FLAG_TRAILING_NEWLINE if newline else 0
        raw = encode_frame(opcode, header, payload, flags=flags)
        stream = io.BytesIO(raw + raw)  # two frames back to back
        first = read_frame(stream)
        second = read_frame(stream)
        assert first == second == decode_frame(raw)
        assert read_frame(stream) is None  # clean EOF at the boundary

    def test_sniffed_prefix_is_honored(self):
        raw = encode_frame(OP_PING, {"op": "ping"})
        stream = io.BytesIO(raw[2:])
        frame = read_frame(stream, first=raw[:2])
        assert frame is not None and frame.opcode == OP_PING

    def test_hello_is_newline_free_and_parseable(self):
        raw = encode_hello()
        assert raw.endswith(b"\n") and b"\n" not in raw[:-1]
        frame = decode_frame(raw)
        assert frame.opcode == OP_HELLO
        assert FRAME_VERSION in frame.header["frames"]
        reply = decode_frame(encode_hello_ok("w7"))
        assert reply.opcode == OP_RESPONSE
        assert reply.header["worker_id"] == "w7"
        assert FRAME_VERSION in reply.header["frames"]

    def test_magic_is_not_json(self):
        # The sniffing dispatch depends on no JSON line starting with the
        # magic bytes.
        assert FRAME_MAGIC[0:1] not in (b"{", b"[", b" ")


class TestColorRequestRoundTrip:
    @given(
        shape=st.one_of(
            st.tuples(st.integers(1, 7), st.integers(1, 7)),
            st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)),
        ),
        seed=st.integers(0, 2**31),
        algorithm=st.sampled_from(["GLL", "BDP", "GLF", "GCP"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_binary_equals_ndjson_decode(self, shape, seed, algorithm):
        weights = np.random.default_rng(seed).integers(
            1, 100, size=shape, dtype=np.int64
        )
        message = {
            "op": "color",
            "id": "prop",
            "shape": list(shape),
            "weights": weights.ravel().tolist(),
            "algorithm": algorithm,
        }
        via_json = request_from_wire(message)
        via_frame = decode_color_request(
            decode_frame(encode_color_request(via_json))
        )
        assert via_frame.key == via_json.key  # same content key → same cache entry
        assert np.array_equal(via_frame.weights, via_json.weights)
        assert via_frame.algorithm == via_json.algorithm
        assert via_frame.shape == via_json.shape

    def test_options_survive_the_frame(self):
        weights = np.arange(1, 26, dtype=np.int64).reshape(5, 5)
        message = {
            "op": "color", "id": "opts", "shape": [5, 5],
            "weights": weights.ravel().tolist(), "algorithm": "GLL",
            "runtime": "tiled", "tiles": [3, 3], "validate": True,
            "timeout_ms": 1500.0,
        }
        direct = request_from_wire(message)
        framed = decode_color_request(decode_frame(encode_color_request(direct)))
        assert framed.tiled and framed.tile_shape == (3, 3)
        assert framed.validate
        assert framed.timeout == pytest.approx(1.5)
        assert framed.key == direct.key

    def test_payload_length_must_match_shape(self):
        weights = np.ones((3, 3), dtype=np.int64)
        raw = encode_color_request(
            request_from_wire({
                "op": "color", "id": "x", "shape": [3, 3],
                "weights": weights.ravel().tolist(), "algorithm": "GLL",
            })
        )
        frame = decode_frame(raw)
        lying = Frame(
            frame.opcode, frame.flags, frame.key,
            dict(frame.header, shape=[4, 4]), frame.payload,
        )
        with pytest.raises(ProtocolError, match="payload bytes"):
            decode_color_request(lying)

    def test_foreign_dtype_rejected(self):
        frame = Frame(
            OP_COLOR, 0, "",
            {"op": "color", "shape": [2, 2], "dtype": "<f8", "algorithm": "GLL"},
            b"\x00" * 32,
        )
        with pytest.raises(ProtocolError, match="dtype"):
            decode_color_request(frame)


class TestResultFrames:
    def test_ok_result_round_trip(self):
        starts = np.arange(12, dtype=np.int64)
        result = ServedResult(
            status="ok", starts=starts, maxcolor=11,
            source="computed", compute_seconds=0.004, batch_size=3,
        )
        frame = decode_frame(encode_result(result, "req-1", {"worker": "w2"}))
        message = response_to_message(frame)
        assert message["status"] == "ok" and message["id"] == "req-1"
        assert message["worker"] == "w2"
        assert message["maxcolor"] == 11
        assert np.array_equal(message["starts"], starts)

    def test_error_result_has_no_payload(self):
        result = ServedResult(status="invalid", error="weights must be non-negative")
        frame = decode_frame(encode_result(result, "req-2"))
        assert frame.payload == b""
        message = response_to_message(frame)
        assert message["status"] == "invalid"
        assert "non-negative" in message["error"]

    def test_ragged_payload_rejected(self):
        raw = encode_frame(OP_RESPONSE, {"status": "ok"}, b"\x01" * 9)
        with pytest.raises(FrameError, match="int64"):
            response_to_message(decode_frame(raw))


class TestTruncationAndCorruption:
    def _sample_frame(self) -> bytes:
        return encode_frame(
            OP_COLOR, {"op": "color", "id": "t"}, b"\x07" * 64,
            key="ab" * KEY_SIZE,
        )

    def test_every_truncation_is_torn(self):
        raw = self._sample_frame()
        for cut in range(len(raw)):
            with pytest.raises(TornFrameError):
                decode_frame(raw[:cut])
            stream = io.BytesIO(raw[:cut])
            if cut == 0:
                assert read_frame(stream) is None  # clean EOF, not torn
            else:
                with pytest.raises(TornFrameError):
                    read_frame(stream)

    def test_bad_magic_is_frame_error(self):
        raw = bytearray(self._sample_frame())
        raw[0] ^= 0xFF
        with pytest.raises(FrameError):
            decode_frame(bytes(raw))

    def test_unsupported_version_is_frame_error(self):
        raw = bytearray(self._sample_frame())
        raw[2] = 99
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(raw))

    def test_unknown_opcode_is_frame_error(self):
        raw = bytearray(self._sample_frame())
        raw[4] = 250
        with pytest.raises(FrameError, match="opcode"):
            decode_frame(bytes(raw))

    def test_oversize_lengths_are_frame_errors(self):
        raw = bytearray(self._sample_frame())
        raw[25:29] = (frames.MAX_HEADER_BYTES + 1).to_bytes(4, "little")
        with pytest.raises(FrameError, match="header"):
            decode_preamble(bytes(raw[:PREAMBLE_SIZE]))

    def test_garbage_header_is_frame_error(self):
        good = self._sample_frame()
        header_len = int.from_bytes(good[25:29], "little")
        raw = bytearray(good)
        start = PREAMBLE_SIZE
        raw[start:start + header_len] = b"\xff" * header_len
        with pytest.raises(FrameError, match="header"):
            decode_frame(bytes(raw))

    @given(data=st.binary(min_size=PREAMBLE_SIZE, max_size=PREAMBLE_SIZE))
    @settings(max_examples=200, deadline=None)
    def test_random_preambles_never_escape_typed_errors(self, data):
        try:
            decode_preamble(data)
        except FrameError:
            pass  # TornFrameError included — both are the typed contract

    @given(data=st.binary(max_size=200), flips=st.integers(0, 2**16))
    @settings(max_examples=200, deadline=None)
    def test_random_bytes_never_hang_or_escape(self, data, flips):
        raw = bytearray(self._sample_frame())
        # XOR a couple of pseudo-random positions, then maybe append noise.
        for shift in (0, 7):
            pos = (flips >> shift) % len(raw)
            raw[pos] ^= (flips % 255) + 1
        blob = bytes(raw) + data
        try:
            decode_frame(blob)
            read_frame(io.BytesIO(blob))
        except FrameError:
            pass
        except ProtocolError:
            pass  # decode_color_request-level rejects are also typed
