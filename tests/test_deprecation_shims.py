"""The deprecated top-level aliases must warn *at the caller's line*.

``repro.color_with`` / ``repro.run_grid`` are shims around their home-package
implementations.  The contract tested here:

- the ``DeprecationWarning`` is attributed to the **caller's** file and line
  (not to ``repro/__init__.py``, and not to any intermediate repro-internal
  frame), so ``python -W error::DeprecationWarning`` tracebacks pinpoint the
  exact call site to migrate;
- under the default warning filter each distinct call site warns exactly
  once — repeated calls from the same line stay quiet after the first.
"""

import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture()
def instance():
    return repro.IVCInstance.from_grid_2d(np.ones((3, 3), dtype=np.int64))


def _caught_deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)
            and "deprecated" in str(w.message)]


class TestCallerAttribution:
    def test_color_with_warns_at_this_file_and_line(self, instance):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.color_with(instance, "GLL"); lineno = sys._getframe().f_lineno  # noqa: E702
        (record,) = _caught_deprecations(caught)
        assert record.filename == __file__
        assert record.lineno == lineno

    def test_run_grid_warns_at_this_file_and_line(self, instance):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.run_grid([instance], ["GLL"]); lineno = sys._getframe().f_lineno  # noqa: E702
        (record,) = _caught_deprecations(caught)
        assert record.filename == __file__
        assert record.lineno == lineno

    def test_internal_repro_frames_are_skipped(self, instance):
        # A call arriving through a repro-internal frame must still be
        # attributed to the outermost external caller, not the internal
        # module — else the once-per-call-site dedup keys on repro's own
        # line and every external call site shares one suppressed warning.
        ns = {"__name__": "repro._fake_internal", "repro": repro}
        exec(
            "def indirect(instance):\n"
            "    return repro.color_with(instance, 'GLL')\n",
            ns,
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ns["indirect"](instance); lineno = sys._getframe().f_lineno  # noqa: E702
        (record,) = _caught_deprecations(caught)
        assert record.filename == __file__
        assert record.lineno == lineno

    def test_wrapped_attribute_exposes_the_real_function(self):
        from repro.core import color_with as home_color_with

        assert repro.color_with.__wrapped__ is home_color_with


class TestOncePerCallSite:
    def test_same_line_warns_once_default_filter(self, instance):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(3):
                repro.color_with(instance, "GLL")
        assert len(_caught_deprecations(caught)) == 1

    def test_distinct_lines_each_warn(self, instance):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            repro.color_with(instance, "GLL")
            repro.color_with(instance, "GLL")
        assert len(_caught_deprecations(caught)) == 2


class TestErrorFilterPinpointsCaller:
    @pytest.mark.parametrize(
        "call",
        [
            'repro.color_with(inst, "GLL")',
            'repro.run_grid([inst], ["GLL"])',
        ],
        ids=["color_with", "run_grid"],
    )
    def test_dash_w_error_traceback_names_caller_line(self, tmp_path, call):
        script = tmp_path / "legacy_caller.py"
        script.write_text(
            "import numpy as np\n"
            "import repro\n"
            "inst = repro.IVCInstance.from_grid_2d("
            "np.ones((3, 3), dtype=np.int64))\n"
            f"{call}\n"  # line 4
        )
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", str(script)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode != 0
        assert "DeprecationWarning" in proc.stderr
        assert f'{script.name}", line 4' in proc.stderr
