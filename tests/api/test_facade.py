"""The ``repro.api`` facade: one entry point, bit-identical to every
legacy call style, with working deprecation shims on the old names."""

import warnings

import numpy as np
import pytest

import repro
from repro.api import ColoringResult, color
from repro.core.algorithms.registry import color_with
from repro.core.problem import IVCInstance
from repro.data import SyntheticWeightSource
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import ExecutionContext


def _weights(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(1, 100, size=shape, dtype=np.int64)


class TestFacadeIdentity:
    @pytest.mark.parametrize("algorithm", ["GLL", "GLF", "BD", "BDP"])
    def test_matches_color_with_on_grids(self, algorithm):
        weights = _weights((12, 9))
        result = color(weights, algorithm)
        legacy = color_with(IVCInstance.from_grid_2d(weights), algorithm)
        assert result.maxcolor == legacy.maxcolor
        np.testing.assert_array_equal(
            result.starts.ravel(), np.asarray(legacy.starts).ravel()
        )
        assert result.starts.shape == weights.shape  # grid-shaped, not flat

    @pytest.mark.parametrize("runtime,fast", [("kernels", True),
                                              ("reference", False)])
    def test_runtime_strings_pin_the_fast_path(self, runtime, fast):
        weights = _weights((10, 10), seed=1)
        result = color(weights, "GLL", runtime=runtime)
        legacy = color_with(IVCInstance.from_grid_2d(weights), "GLL", fast=fast)
        np.testing.assert_array_equal(
            result.starts.ravel(), np.asarray(legacy.starts).ravel()
        )
        assert result.provenance["fast"] is fast

    def test_accepts_prepared_instances(self):
        weights = _weights((6, 5, 4), seed=2)
        instance = IVCInstance.from_grid_3d(weights, name="prep")
        result = color(instance, "BDP")
        legacy = color_with(instance, "BDP")
        assert result.maxcolor == legacy.maxcolor
        np.testing.assert_array_equal(
            result.starts.ravel(), np.asarray(legacy.starts).ravel()
        )

    def test_tiled_runtime_is_bit_identical(self):
        weights = _weights((20, 14), seed=3)
        tiled = color(weights, runtime="tiled", tile_shape=(6, 6), jobs=1)
        mono = color(weights, runtime="kernels")
        assert tiled.mode == "tiled"
        assert tiled.maxcolor == mono.maxcolor
        np.testing.assert_array_equal(tiled.starts, mono.starts)
        assert tiled.provenance["tiles"] > 1
        assert tiled.tiled is not None

    def test_weight_source_input_goes_tiled(self):
        source = SyntheticWeightSource((16, 12), seed=4)
        result = color(source, tile_shape=(5, 5), jobs=1)
        direct = color(source.region(((0, 16), (0, 12))), runtime="kernels")
        assert result.mode == "tiled"
        np.testing.assert_array_equal(result.starts, direct.starts)


class TestFacadeContracts:
    def test_result_carries_provenance_and_metrics(self):
        result = color(_weights((8, 8)), "GLL", validate=True)
        assert isinstance(result, ColoringResult)
        assert result.provenance["mode"] == "monolithic"
        assert result.provenance["algorithm"] == "GLL"
        assert isinstance(result.provenance["runtime"], str)
        assert result.metrics is not None
        assert result.coloring is not None

    def test_runtime_config_and_context_accepted(self):
        weights = _weights((9, 9), seed=5)
        config = RuntimeConfig()
        via_config = color(weights, runtime=config)
        via_context = color(weights, runtime=ExecutionContext(config))
        np.testing.assert_array_equal(via_config.starts, via_context.starts)

    def test_bad_runtime_rejected(self):
        with pytest.raises(ValueError, match="runtime"):
            color(_weights((4, 4)), runtime="turbo")
        with pytest.raises(TypeError):
            color(_weights((4, 4)), runtime=42)

    def test_tiled_demands_gll(self):
        with pytest.raises(ValueError, match="GLL"):
            color(_weights((8, 8)), "BDP", runtime="tiled")

    def test_bad_grid_rank_rejected(self):
        with pytest.raises(ValueError, match="2D or 3D"):
            color(np.arange(5), "GLL")


class TestDeprecationShims:
    def test_top_level_color_with_warns_and_delegates(self):
        weights = _weights((7, 7), seed=6)
        instance = IVCInstance.from_grid_2d(weights)
        with pytest.warns(DeprecationWarning, match="repro.api.color"):
            legacy = repro.color_with(instance, "GLL")
        fresh = color_with(instance, "GLL")
        np.testing.assert_array_equal(
            np.asarray(legacy.starts), np.asarray(fresh.starts)
        )

    def test_top_level_run_grid_warns(self):
        instance = IVCInstance.from_grid_2d(_weights((5, 5), seed=7))
        with pytest.warns(DeprecationWarning, match="repro.engine"):
            result = repro.run_grid([instance], ["GLL"], jobs=1)
        assert len(result) == 1  # GridResult is list-like: one cell ran

    def test_facade_is_exported_at_top_level(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the new names must not warn
            result = repro.color(_weights((5, 5), seed=8), "GLL")
        assert result.maxcolor > 0
        assert "color" in repro.__all__ and "api" in repro.__all__
