"""Report rendering and multi-format writing."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    ReportError,
    harvest_campaign,
    load_spec,
    render_reports,
    run_campaign,
    write_reports,
)
from repro.campaign.spec import ReportSpec

from tests.campaign.conftest import write_spec

RICH_SPEC = """\
[campaign]
name = "rich"

[scenario]
kind = "scaling_grids"
sides = [4, 6]
low = 0
high = 20
seed = 3

[[report]]
kind = "runtime"
title = "rich runtime"

[[report]]
kind = "scaling"
title = "rich scaling"
note = "a note line."
"""


@pytest.fixture(scope="module")
def rich_harvest(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("rich")
    spec = load_spec(write_spec(tmp, RICH_SPEC, "rich.toml"))
    out = tmp / "run"
    run_campaign(spec, out_dir=out)
    return harvest_campaign(out)


def test_render_defaults_to_spec_reports(rich_harvest):
    docs = render_reports(rich_harvest)
    assert [d.slug for d in docs] == ["rich_runtime", "rich_scaling"]
    assert docs[1].body.endswith("a note line.")
    assert "max ratio/doubling" in docs[1].body


def test_render_rejects_duplicate_slugs(rich_harvest):
    reports = [
        ReportSpec(kind="runtime", title="same title"),
        ReportSpec(kind="scaling", title="same title"),
    ]
    with pytest.raises(ReportError, match="duplicate report slug"):
        render_reports(rich_harvest, reports)


def test_write_reports_all_formats(rich_harvest, tmp_path):
    docs = render_reports(rich_harvest)
    written = write_reports(docs, tmp_path, campaign="rich")
    names = {p.name for p in written}
    assert {"rich_runtime.txt", "rich_scaling.txt", "report.md",
            "report.html", "report.json"} <= names
    # txt is the raw body plus one newline — the legacy emit convention.
    assert (tmp_path / "rich_scaling.txt").read_text() == docs[1].body + "\n"
    payload = json.loads((tmp_path / "report.json").read_text())
    assert payload["campaign"] == "rich"
    assert [r["slug"] for r in payload["reports"]] == [
        "rich_runtime",
        "rich_scaling",
    ]
    html = (tmp_path / "report.html").read_text()
    assert "rich runtime" in html and "<pre>" in html


def test_write_reports_format_subset(rich_harvest, tmp_path):
    docs = render_reports(rich_harvest)
    written = write_reports(docs, tmp_path, formats=("txt",))
    assert all(p.suffix == ".txt" for p in written)


def test_group_ratio_report_groups_by_metadata(tmp_path):
    spec = load_spec(
        write_spec(
            tmp_path,
            """\
[campaign]
name = "grp"

[scenario]
kind = "weight_regimes"
shape = [8, 8]
repeats = 2
seed = 1
spikes = 5

[[report]]
kind = "group_ratio"
title = "grp ratios"
group_key = "regime"
""",
            "grp.toml",
        )
    )
    out = tmp_path / "run"
    run_campaign(spec, out_dir=out)
    docs = render_reports(harvest_campaign(out))
    body = docs[0].body
    for regime in ("near-constant", "uniform dense", "exponential", "sparse spiky"):
        assert regime in body
