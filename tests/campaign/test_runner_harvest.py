"""Campaign execution and harvesting: manifests, resume adoption, digests."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignError,
    HarvestError,
    ResumeMismatchError,
    harvest_campaign,
    harvest_digest,
    load_harvest,
    load_spec,
    read_manifest,
    run_campaign,
    suite_result_from_harvest,
)

from tests.campaign.conftest import TINY_SPEC, write_spec


def _run_tiny(tmp_path, subdir="run"):
    spec = load_spec(write_spec(tmp_path))
    out = tmp_path / subdir
    run_campaign(spec, out_dir=out)
    return spec, out


def test_run_writes_manifest_and_log(tmp_path):
    spec, out = _run_tiny(tmp_path)
    manifest = read_manifest(out)
    assert manifest["campaign"] == "tiny"
    assert manifest["num_cells"] == 4
    assert manifest["plan_fingerprint"] == spec.plan_fingerprint()
    assert manifest["spec_fingerprint"] == spec.fingerprint()
    assert [i["name"] for i in manifest["instances"]] == [
        "scaling-4x4",
        "scaling-6x6",
    ]
    lines = (out / "runs.jsonl").read_text().splitlines()
    assert len(lines) == 4
    sessions = (out / "sessions.jsonl").read_text().splitlines()
    assert len(sessions) == 1
    session = json.loads(sessions[0])
    assert session["cells_executed"] == 4
    assert session["cells_resumed"] == 0


def test_harvest_round_trip(tmp_path):
    spec, out = _run_tiny(tmp_path)
    harvest = harvest_campaign(out)
    assert harvest["campaign"] == "tiny"
    assert len(harvest["records"]) == 4
    assert harvest["failures"] == 0
    # Written artifact loads back identically.
    assert load_harvest(out) == harvest
    result = suite_result_from_harvest(harvest)
    assert result.num_instances == 2
    assert list(result.algorithms) == ["GLL", "BD"]
    assert all(v > 0 for vs in result.maxcolors.values() for v in vs)


def test_refuses_dirty_dir_without_resume(tmp_path):
    spec, out = _run_tiny(tmp_path)
    with pytest.raises(CampaignError, match="resume"):
        run_campaign(spec, out_dir=out)


def test_resume_adopts_everything(tmp_path):
    spec, out = _run_tiny(tmp_path)
    digest_before = harvest_digest(harvest_campaign(out))
    result = run_campaign(spec, out_dir=out, resume=True)
    assert result.session["cells_resumed"] == 4
    assert result.session["cells_executed"] == 0
    assert harvest_digest(harvest_campaign(out)) == digest_before
    # Adopted records keep their original elapsed values verbatim, so even
    # the full record list is identical, timings included.
    sessions = (out / "sessions.jsonl").read_text().splitlines()
    assert len(sessions) == 2


def test_resume_refuses_other_plan(tmp_path):
    spec, out = _run_tiny(tmp_path)
    other = load_spec(
        write_spec(tmp_path, TINY_SPEC.replace("seed = 3", "seed = 5"), "o.toml")
    )
    with pytest.raises(ResumeMismatchError):
        run_campaign(other, out_dir=out, resume=True)


def test_resume_after_torn_tail(tmp_path):
    """A crash mid-append leaves a torn final line; resume compacts it and
    re-executes only the lost cell."""
    spec, out = _run_tiny(tmp_path)
    log = out / "runs.jsonl"
    lines = log.read_text().splitlines(keepends=True)
    log.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
    clean = harvest_digest(harvest_campaign_reference(tmp_path))
    result = run_campaign(spec, out_dir=out, resume=True)
    assert result.session["cells_resumed"] == 3
    assert result.session["cells_executed"] == 1
    # The compacted-and-completed log harvests strictly, and the digest
    # matches an uninterrupted run of the same plan.
    assert harvest_digest(harvest_campaign(out)) == clean


def harvest_campaign_reference(tmp_path):
    """An uninterrupted run of the tiny plan in a fresh dir."""
    spec = load_spec(write_spec(tmp_path))
    out = tmp_path / "reference"
    run_campaign(spec, out_dir=out)
    return harvest_campaign(out)


def test_harvest_missing_cells_hints_resume(tmp_path):
    spec, out = _run_tiny(tmp_path)
    log = out / "runs.jsonl"
    lines = log.read_text().splitlines(keepends=True)
    log.write_text("".join(lines[:-1]))  # drop one completed cell
    with pytest.raises(HarvestError, match="--resume"):
        harvest_campaign(out)


def test_harvest_digest_ignores_timings(tmp_path):
    """Two independent runs of the same plan agree on the digest (timings
    and session bookkeeping are excluded by construction)."""
    _, out_a = _run_tiny(tmp_path, "a")
    _, out_b = _run_tiny(tmp_path, "b")
    ha, hb = harvest_campaign(out_a), harvest_campaign(out_b)
    assert harvest_digest(ha) == harvest_digest(hb)
    ra, rb = ha["records"], hb["records"]
    assert [r["maxcolor"] for r in ra] == [r["maxcolor"] for r in rb]


def test_spec_runtime_overrides_flow_into_context(tmp_path):
    spec = load_spec(
        write_spec(
            tmp_path,
            TINY_SPEC + '\n[runtime]\nfast_paths = "off"\nseed = 7\n',
            "rt.toml",
        )
    )
    out = tmp_path / "rt"
    run_campaign(spec, out_dir=out)
    manifest = read_manifest(out)
    assert manifest["spec"]["runtime"] == {"fast_paths": "off", "seed": 7}
