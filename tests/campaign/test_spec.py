"""Spec parsing, validation, includes, and fingerprints."""

from __future__ import annotations

import pytest

from repro.campaign import (
    SpecError,
    UnknownReportError,
    UnknownScenarioError,
    load_spec,
    spec_from_canonical,
)
from repro.core.algorithms.registry import ALGORITHMS

from tests.campaign.conftest import TINY_SPEC, write_spec


def test_parse_minimal_defaults(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "m"\n\n[scenario]\nkind = "scaling_grids"\n',
        "m.toml",
    )
    spec = load_spec(path)
    assert spec.name == "m"
    assert spec.version == 1
    assert spec.algorithms == tuple(ALGORITHMS)  # default: the paper's seven
    assert spec.reports == ()
    assert spec.source == path


def test_tiny_spec_parses(tiny_spec):
    assert tiny_spec.algorithms == ("GLL", "BD")
    assert [r.kind for r in tiny_spec.reports] == ["runtime"]
    assert tiny_spec.scenario["kind"] == "scaling_grids"


def test_unknown_top_level_key(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "scaling_grids"\n\n[reprots]\nfoo = 1\n',
        "x.toml",
    )
    with pytest.raises(SpecError, match="reprots"):
        load_spec(path)


def test_missing_campaign_table(tmp_path):
    path = write_spec(tmp_path, '[scenario]\nkind = "scaling_grids"\n', "x.toml")
    with pytest.raises(SpecError, match="campaign"):
        load_spec(path)


def test_missing_name(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\ndescription = "d"\n\n[scenario]\nkind = "scaling_grids"\n',
        "x.toml",
    )
    with pytest.raises(SpecError, match="name"):
        load_spec(path)


def test_bad_version(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\nversion = 2\n\n[scenario]\nkind = "scaling_grids"\n',
        "x.toml",
    )
    with pytest.raises(SpecError, match="version"):
        load_spec(path)


def test_unknown_scenario_kind_suggests(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "suite2"\n',
        "x.toml",
    )
    with pytest.raises(UnknownScenarioError, match="suite2d"):
        load_spec(path)


def test_unknown_scenario_param(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "scaling_grids"\nsids = [4]\n',
        "x.toml",
    )
    with pytest.raises(SpecError, match="sids"):
        load_spec(path)


def test_unknown_algorithm_suggests(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "scaling_grids"\n\n'
        '[matrix]\nalgorithms = ["GLE"]\n',
        "x.toml",
    )
    with pytest.raises(SpecError, match="GL"):
        load_spec(path)


def test_duplicate_algorithm(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "scaling_grids"\n\n'
        '[matrix]\nalgorithms = ["GLL", "GLL"]\n',
        "x.toml",
    )
    with pytest.raises(SpecError, match="duplicate"):
        load_spec(path)


def test_unknown_runtime_field(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "scaling_grids"\n\n'
        "[runtime]\nnot_a_knob = 1\n",
        "x.toml",
    )
    with pytest.raises(SpecError, match="not_a_knob"):
        load_spec(path)


def test_unknown_run_key(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "scaling_grids"\n\n'
        "[run]\nworkers = 4\n",
        "x.toml",
    )
    with pytest.raises(SpecError, match="workers"):
        load_spec(path)


def test_unknown_report_kind_suggests(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "scaling_grids"\n\n'
        '[[report]]\nkind = "runtim"\ntitle = "t"\n',
        "x.toml",
    )
    with pytest.raises(UnknownReportError, match="runtime"):
        load_spec(path)


def test_report_missing_required_param(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "scaling_grids"\n\n'
        '[[report]]\nkind = "quality"\ntitle = "t"\n',
        "x.toml",
    )
    with pytest.raises(SpecError, match="bound_label"):
        load_spec(path)


def test_report_unknown_param(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "x"\n\n[scenario]\nkind = "scaling_grids"\n\n'
        '[[report]]\nkind = "runtime"\ntitle = "t"\nbound_label = "LB"\n',
        "x.toml",
    )
    with pytest.raises(SpecError, match="bound_label"):
        load_spec(path)


def test_include_merges_child_wins(tmp_path):
    write_spec(
        tmp_path,
        '[campaign]\nname = "base"\n\n[scenario]\nkind = "scaling_grids"\nseed = 0\nsides = [4]\n',
        "base.toml",
    )
    child = write_spec(
        tmp_path,
        'include = ["base.toml"]\n\n[campaign]\nname = "child"\n\n[scenario]\nseed = 9\n',
        "child.toml",
    )
    spec = load_spec(child)
    assert spec.name == "child"
    assert spec.scenario["seed"] == 9  # child wins
    assert spec.scenario["sides"] == [4]  # inherited


def test_include_cycle(tmp_path):
    write_spec(tmp_path, 'include = ["b.toml"]\n[campaign]\nname = "a"\n', "a.toml")
    write_spec(tmp_path, 'include = ["a.toml"]\n[campaign]\nname = "b"\n', "b.toml")
    with pytest.raises(SpecError, match="[Cc]ycl"):
        load_spec(tmp_path / "a.toml")


def test_plan_fingerprint_ignores_name_and_reports(tmp_path):
    a = load_spec(write_spec(tmp_path, TINY_SPEC, "a.toml"))
    b_text = TINY_SPEC.replace('name = "tiny"', 'name = "other"').replace(
        'title = "tiny runtime"', 'title = "other runtime"'
    )
    b = load_spec(write_spec(tmp_path, b_text, "b.toml"))
    assert a.plan_fingerprint() == b.plan_fingerprint()
    assert a.fingerprint() != b.fingerprint()


def test_plan_fingerprint_tracks_scenario(tmp_path):
    a = load_spec(write_spec(tmp_path, TINY_SPEC, "a.toml"))
    b = load_spec(
        write_spec(tmp_path, TINY_SPEC.replace("seed = 3", "seed = 4"), "b.toml")
    )
    assert a.plan_fingerprint() != b.plan_fingerprint()


def test_with_scenario_identity_and_override(tiny_spec):
    same = tiny_spec.with_scenario(seed=3)
    assert same.plan_fingerprint() == tiny_spec.plan_fingerprint()
    assert same.reports == tiny_spec.reports
    other = tiny_spec.with_scenario(seed=11)
    assert other.plan_fingerprint() != tiny_spec.plan_fingerprint()
    assert other.scenario["seed"] == 11


def test_canonical_round_trip(tiny_spec):
    clone = spec_from_canonical(tiny_spec.canonical())
    assert clone.canonical() == tiny_spec.canonical()
    assert clone.fingerprint() == tiny_spec.fingerprint()
