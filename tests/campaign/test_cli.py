"""The four ``stencil-ivc campaign`` verbs, driven through ``main()``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

from tests.campaign.conftest import TINY_SPEC, write_spec


@pytest.fixture
def tiny_path(tmp_path):
    return write_spec(tmp_path, TINY_SPEC)


def test_plan_prints_fingerprints_and_cells(tiny_path, capsys):
    assert main(["campaign", "plan", str(tiny_path)]) == 0
    out = capsys.readouterr().out
    assert "campaign:          tiny" in out
    assert "cells:             4" in out
    assert "plan fingerprint:" in out


def test_run_harvest_report_pipeline(tiny_path, tmp_path, capsys):
    out_dir = tmp_path / "artifact"
    assert main(
        ["campaign", "run", str(tiny_path), "--out-dir", str(out_dir)]
    ) == 0
    assert "executed 4, resumed 0" in capsys.readouterr().out
    assert (out_dir / "runs.jsonl").is_file()
    assert (out_dir / "manifest.json").is_file()

    assert main(["campaign", "harvest", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "harvested tiny: 4 records" in out
    harvest = json.loads((out_dir / "harvest.json").read_text())
    assert harvest["campaign"] == "tiny"

    assert main(
        ["campaign", "report", str(out_dir), "--format", "txt,json"]
    ) == 0
    assert (out_dir / "reports" / "tiny_runtime.txt").is_file()
    assert (out_dir / "reports" / "report.json").is_file()


def test_run_resume_adopts_completed_cells(tiny_path, tmp_path, capsys):
    out_dir = tmp_path / "artifact"
    main(["campaign", "run", str(tiny_path), "--out-dir", str(out_dir)])
    capsys.readouterr()
    assert main(
        ["campaign", "run", str(tiny_path), "--out-dir", str(out_dir), "--resume"]
    ) == 0
    assert "executed 0, resumed 4" in capsys.readouterr().out


def test_run_refuses_dirty_dir_without_resume(tiny_path, tmp_path, capsys):
    out_dir = tmp_path / "artifact"
    main(["campaign", "run", str(tiny_path), "--out-dir", str(out_dir)])
    capsys.readouterr()
    assert main(
        ["campaign", "run", str(tiny_path), "--out-dir", str(out_dir)]
    ) == 2
    assert "resume" in capsys.readouterr().err


def test_spec_error_exits_2_with_message(tmp_path, capsys):
    bad = write_spec(
        tmp_path,
        TINY_SPEC.replace('kind = "scaling_grids"', 'kind = "scaling_grid"'),
        "bad.toml",
    )
    assert main(["campaign", "plan", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "scaling_grids" in err


def test_harvest_incomplete_dir_hints_resume(tiny_path, tmp_path, capsys):
    out_dir = tmp_path / "artifact"
    main(["campaign", "run", str(tiny_path), "--out-dir", str(out_dir)])
    capsys.readouterr()
    runs = out_dir / "runs.jsonl"
    lines = runs.read_text().splitlines(keepends=True)
    runs.write_text("".join(lines[:-1]))
    assert main(["campaign", "harvest", str(out_dir)]) == 2
    assert "--resume" in capsys.readouterr().err
