"""Differential check: the CLI reproduces API-rendered tables byte for byte.

Runs the committed ``campaigns/smoke.toml`` spec once through the Python
API, then re-enters the same artifact directory through the CLI with
``--resume`` (adopting every cell, timings included) and renders the same
reports.  Every table must match bit-identically — this is the contract
that lets a paper figure be regenerated from a committed spec alone.
"""

from __future__ import annotations

from pathlib import Path

from repro.campaign import (
    harvest_campaign,
    harvest_digest,
    load_spec,
    render_reports,
    run_campaign,
    write_reports,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SMOKE_SPEC = REPO_ROOT / "campaigns" / "smoke.toml"


def test_cli_reproduces_api_tables_bit_identically(tmp_path, capsys):
    spec = load_spec(SMOKE_SPEC)
    out = tmp_path / "artifact"

    # API pass: run, harvest, render.
    run_campaign(spec, out_dir=out)
    harvest = harvest_campaign(out)
    api_dir = tmp_path / "api-reports"
    api_paths = write_reports(render_reports(harvest), api_dir, formats=("txt",))
    assert api_paths, "smoke campaign rendered no reports"

    # CLI pass over the SAME artifact dir: --resume adopts all cells
    # (elapsed times verbatim), so the tables must come out byte-identical.
    assert main(
        ["campaign", "run", str(SMOKE_SPEC), "--out-dir", str(out), "--resume"]
    ) == 0
    assert "executed 0" in capsys.readouterr().out
    assert main(["campaign", "harvest", str(out)]) == 0
    cli_dir = tmp_path / "cli-reports"
    assert main(
        [
            "campaign", "report", str(out),
            "--format", "txt", "--report-dir", str(cli_dir),
        ]
    ) == 0

    # Resume did not disturb the artifact.
    assert harvest_digest(harvest_campaign(out)) == harvest_digest(harvest)

    cli_files = sorted(p.name for p in cli_dir.glob("*.txt"))
    assert cli_files == sorted(p.name for p in api_paths)
    for path in api_paths:
        assert (cli_dir / path.name).read_bytes() == path.read_bytes(), (
            f"{path.name} differs between API and CLI rendering"
        )
