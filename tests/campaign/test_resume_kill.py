"""Satellite hard case: SIGKILL mid-plan, then ``--resume``.

A campaign run (CLI subprocess, seeded FaultPlan slowing every cell so the
kill lands mid-plan) is SIGKILLed once part of the run log exists.  Resume
must adopt every completed cell verbatim — zero re-execution — and the
final harvest must be identical to an uninterrupted run of the same plan,
report bytes included.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    harvest_campaign,
    harvest_digest,
    load_spec,
    render_reports,
    run_campaign,
    write_reports,
)
from repro.engine import read_run_log

from tests.campaign.conftest import write_spec

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

KILL_SPEC = """\
[campaign]
name = "kill-test"

[scenario]
kind = "weight_regimes"
shape = [12, 12]
repeats = 3
seed = 9
spikes = 10

[[report]]
kind = "group_ratio"
title = "kill test ratios"
group_key = "regime"
"""

NUM_CELLS = 4 * 3 * 7  # regimes x repeats x the paper's seven algorithms

#: Seeded plan: every cell sleeps 50ms, so the run lasts >=4s and the kill
#: reliably lands mid-plan.
FAULTS = "seed=7;engine.cell:slow=1.0,delay=0.05"


def _render_txt(out_dir: Path) -> bytes:
    harvest = harvest_campaign(out_dir)
    docs = render_reports(harvest)
    write_reports(docs, out_dir / "reports", formats=("txt",))
    return (out_dir / "reports" / "kill_test_ratios.txt").read_bytes()


@pytest.mark.slow
def test_sigkill_mid_plan_resumes_without_reexecution(tmp_path):
    spec_path = write_spec(tmp_path, KILL_SPEC, "kill.toml")
    out = tmp_path / "interrupted"

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "campaign",
            "run",
            str(spec_path),
            "--out-dir",
            str(out),
            "--faults",
            FAULTS,
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    runs = out / "runs.jsonl"
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                _, stderr = proc.communicate()
                pytest.fail(
                    "campaign run exited before the kill landed: "
                    + stderr.decode()
                )
            if runs.is_file() and runs.read_bytes().count(b"\n") >= 10:
                break
            time.sleep(0.02)
        else:
            pytest.fail("run log never reached 10 records")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    completed = read_run_log(runs, strict=False)
    assert 0 < len(completed) < NUM_CELLS, "kill did not land mid-plan"

    # Resume (no faults): adopts every completed cell, executes the rest.
    spec = load_spec(spec_path)
    result = run_campaign(spec, out_dir=out, resume=True)
    assert result.session["cells_resumed"] == len(completed)
    assert result.session["cells_executed"] == NUM_CELLS - len(completed)

    # The interrupted-and-resumed artifact is indistinguishable from an
    # uninterrupted run: same harvest digest, same report bytes.
    reference = tmp_path / "reference"
    run_campaign(spec, out_dir=reference)
    assert harvest_digest(harvest_campaign(out)) == harvest_digest(
        harvest_campaign(reference)
    )
    assert _render_txt(out) == _render_txt(reference)
