"""Shared fixtures for the campaign subsystem tests.

The tiny spec keeps every run under a second: two 2D grids (sides 4 and
6) × two algorithms = 4 cells.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.campaign import load_spec

TINY_SPEC = """\
[campaign]
name = "tiny"
description = "test campaign"

[scenario]
kind = "scaling_grids"
sides = [4, 6]
low = 0
high = 20
seed = 3

[matrix]
algorithms = ["GLL", "BD"]

[[report]]
kind = "runtime"
title = "tiny runtime"
"""


def write_spec(dir_path: Path, text: str = TINY_SPEC, name: str = "tiny.toml") -> Path:
    path = Path(dir_path) / name
    path.write_text(text)
    return path


@pytest.fixture
def tiny_spec(tmp_path):
    return load_spec(write_spec(tmp_path))
