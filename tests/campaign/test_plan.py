"""Plan compilation: matrix expansion, variant naming, determinism."""

from __future__ import annotations

import pytest

from repro.campaign import PlanError, compile_plan, load_spec
from repro.campaign.plan import expand_matrix

from tests.campaign.conftest import write_spec


def test_expand_matrix_declaration_order():
    variants = expand_matrix({"a": [1, 2], "b": ["x", "y"]})
    assert variants == [
        {"a": 1, "b": "x"},
        {"a": 1, "b": "y"},
        {"a": 2, "b": "x"},
        {"a": 2, "b": "y"},
    ]
    assert expand_matrix({}) == [{}]


def test_compile_tiny(tiny_spec):
    plan = compile_plan(tiny_spec)
    assert plan.num_cells == 4  # 2 sides x 2 algorithms
    assert plan.algorithms == ("GLL", "BD")
    assert [i.name for i in plan.instances] == ["scaling-4x4", "scaling-6x6"]
    assert plan.variants == ({},)
    assert plan.fingerprint() == tiny_spec.plan_fingerprint()


def test_compile_is_deterministic(tiny_spec):
    a = compile_plan(tiny_spec)
    b = compile_plan(tiny_spec)
    assert [i.name for i in a.instances] == [i.name for i in b.instances]
    assert [h.num_vertices for h in a.handles()] == [
        h.num_vertices for h in b.handles()
    ]


def test_matrix_axis_variants_tag_names(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "m"\n\n[scenario]\nkind = "scaling_grids"\n'
        "sides = [4]\n\n[matrix]\nseed = [0, 1]\n"
        'algorithms = ["GLL"]\n',
        "m.toml",
    )
    plan = compile_plan(load_spec(path))
    assert [i.name for i in plan.instances] == [
        "scaling-4x4[seed=0]",
        "scaling-4x4[seed=1]",
    ]
    assert plan.variants == ({"seed": 0}, {"seed": 1})
    # The axis value lands in the instance metadata for harvest grouping.
    assert [i.metadata["seed"] for i in plan.instances] == [0, 1]


def test_empty_plan_raises(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "e"\n\n[scenario]\nkind = "scaling_grids"\nsides = []\n',
        "e.toml",
    )
    with pytest.raises(PlanError, match="no instances"):
        compile_plan(load_spec(path))


def test_duplicate_instance_names_raise(tmp_path):
    path = write_spec(
        tmp_path,
        '[campaign]\nname = "d"\n\n[scenario]\nkind = "scaling_grids"\nsides = [4, 4]\n',
        "d.toml",
    )
    with pytest.raises(PlanError, match="duplicate instance name"):
        compile_plan(load_spec(path))


def test_handles_mirror_instances(tiny_spec):
    plan = compile_plan(tiny_spec)
    handles = plan.handles()
    assert [h.name for h in handles] == [i.name for i in plan.instances]
    assert all(
        h.num_vertices == i.num_vertices
        for h, i in zip(handles, plan.instances)
    )
