"""Smoke tests: every example script must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, monkeypatch, capsys) -> str:
    monkeypatch.syspath_prepend(str(EXAMPLES))
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example("quickstart.py", monkeypatch, capsys)
    assert "lower bound" in out
    assert "BDP" in out


def test_odd_cycles(monkeypatch, capsys):
    out = run_example("odd_cycles.py", monkeypatch, capsys)
    assert "optimum    : 30" in out
    assert "exceeds every lower bound" in out


def test_np_completeness(monkeypatch, capsys):
    out = run_example("np_completeness.py", monkeypatch, capsys)
    assert "colorable with 14 colors: True" in out
    assert "colorable with 14 colors: False" in out


@pytest.mark.slow
def test_stkde_application(monkeypatch, capsys):
    out = run_example("stkde_application.py", monkeypatch, capsys)
    assert "density matches sequential reference: True" in out
    assert "colors vs simulated runtime" in out


@pytest.mark.slow
def test_paper_tour(monkeypatch, capsys):
    out = run_example("paper_tour.py", monkeypatch, capsys)
    assert "Theorem 1" in out
    assert "NOT 14-colorable: True" in out
    assert "BDP" in out


@pytest.mark.slow
def test_nbody_simulation(monkeypatch, capsys):
    out = run_example("nbody_simulation.py", monkeypatch, capsys)
    assert "threaded forces match O(N^2) reference: True" in out
    assert "recolored" in out


@pytest.mark.slow
def test_flocking_simulation(monkeypatch, capsys):
    out = run_example("flocking_simulation.py", monkeypatch, capsys)
    assert "threaded==sequential: True" in out
    assert "final polarization" in out
