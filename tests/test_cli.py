"""Tests for the ``stencil-ivc`` command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for cmd in ("solve", "suite", "optimal", "stkde", "npc", "algorithms",
                    "serve", "loadgen"):
            args = parser.parse_args([cmd] if cmd != "solve" else ["solve", "x.npy"])
            assert hasattr(args, "func")

    def test_jobs_flag_on_experiment_subcommands(self):
        parser = build_parser()
        for cmd in ("suite", "optimal", "stkde"):
            assert parser.parse_args([cmd, "--jobs", "3"]).jobs == 3
            assert parser.parse_args([cmd]).jobs == 0  # 0 = all cores

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"stencil-ivc {__version__}"

    def test_unknown_subcommand_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2  # argparse usage-error convention
        err = capsys.readouterr().err
        assert "usage:" in err and "frobnicate" in err

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8765
        assert args.max_batch == 32
        assert args.batch_window_ms == pytest.approx(2.0)
        assert args.queue_limit == 256

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.requests == 200
        assert args.concurrency == 8
        assert args.algorithm == "BDP"
        assert args.shapes == "32x32,48x48"


class TestAlgorithms:
    def test_lists_registry_specs(self, capsys):
        rc = main(["algorithms"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("GLL", "BDP", "GSL", "GLF+LS"):
            assert name in out
        assert "extension" in out and "paper" in out

    def test_paper_only(self, capsys):
        rc = main(["algorithms", "--paper-only"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BDP" in out and "GSL" not in out


class TestSolve:
    def test_solve_npy(self, tmp_path, capsys):
        path = tmp_path / "weights.npy"
        np.save(path, np.random.default_rng(0).integers(0, 9, size=(5, 5)))
        rc = main(["solve", str(path), "--algorithm", "BDP"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "maxcolor" in out and "BDP" in out

    def test_solve_text_3d_saves_output(self, tmp_path, capsys):
        path = tmp_path / "weights.npy"
        out_path = tmp_path / "starts.npy"
        np.save(path, np.ones((3, 3, 3), dtype=np.int64))
        rc = main(["solve", str(path), "--algorithm", "GLF", "--output", str(out_path)])
        assert rc == 0
        starts = np.load(out_path)
        assert starts.shape == (3, 3, 3)

    def test_solve_bad_ndim(self, tmp_path, capsys):
        path = tmp_path / "weights.npy"
        np.save(path, np.ones(5, dtype=np.int64))
        assert main(["solve", str(path)]) == 2


class TestBounds:
    def test_bounds_2d(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        np.save(path, np.full((4, 4), 3, dtype=np.int64))
        rc = main(["bounds", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clique blocks   : 12" in out
        assert "combined bound  : 12" in out

    def test_bounds_with_odd_cycles(self, tmp_path, capsys):
        from repro.data.paper_instances import figure2_odd_cycle

        path = tmp_path / "w.npy"
        np.save(path, figure2_odd_cycle().weight_grid())
        rc = main(["bounds", str(path), "--odd-cycles", "--max-cycle-len", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "combined bound  : 30" in out

    def test_bounds_bad_ndim(self, tmp_path):
        path = tmp_path / "w.npy"
        np.save(path, np.ones(3))
        assert main(["bounds", str(path)]) == 2


class TestExact:
    def test_exact_small(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        out_path = tmp_path / "opt.npy"
        np.save(path, np.array([[2, 3], [4, 5]], dtype=np.int64))
        rc = main(["exact", str(path), "--output", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "maxcolor : 14" in out  # K4 stacks to the total weight
        assert np.load(out_path).shape == (2, 2)


class TestSuites:
    def test_suite_2d_tiny(self, capsys):
        rc = main(["suite", "--dim", "2", "--scale", "0.02",
                   "--dim-cap", "2", "--max-cells", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BDP" in out and "tau" in out

    def test_suite_parallel_with_run_log(self, tmp_path, capsys):
        from repro.engine import read_run_log

        log = tmp_path / "run.jsonl"
        rc = main(["suite", "--dim", "2", "--scale", "0.02",
                   "--dim-cap", "2", "--max-cells", "16",
                   "--jobs", "2", "--run-log", str(log)])
        assert rc == 0
        assert "BDP" in capsys.readouterr().out
        records = read_run_log(log)
        assert records and all(r.ok for r in records)

    def test_optimal_tiny(self, capsys):
        rc = main(["optimal", "--dim", "2", "--scale", "0.02",
                   "--dim-cap", "2", "--max-cells", "16", "--time-limit", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MILP solved" in out


class TestGantt:
    def test_gantt_writes_svg(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        out = tmp_path / "g.svg"
        np.save(path, np.random.default_rng(1).integers(1, 9, size=(5, 5)))
        rc = main(["gantt", str(path), "--workers", "3", "--output", str(out)])
        assert rc == 0
        import xml.etree.ElementTree as ET

        root = ET.parse(out).getroot()
        assert root.tag.endswith("svg")
        assert "makespan" in capsys.readouterr().out


class TestDataDir:
    def test_suite_from_csv_directory(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        rows = ["x,y,t"] + [
            f"{x:.3f},{y:.3f},{t:.3f}"
            for x, y, t in rng.uniform(0, 100, size=(150, 3))
        ]
        (tmp_path / "mydata.csv").write_text("\n".join(rows) + "\n")
        rc = main(["suite", "--dim", "2", "--dim-cap", "4", "--max-cells", "64",
                   "--data-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "suite" in out and "BDP" in out


class TestPartition:
    def test_partition_comparison(self, tmp_path, capsys):
        rng = np.random.default_rng(5)
        # Clustered events so balancing visibly helps.
        pts = np.vstack(
            [rng.normal([20, 20], 2.0, size=(200, 2)), rng.uniform(0, 100, size=(100, 2))]
        )
        t = rng.uniform(0, 10, size=300)
        rows = ["x,y,t"] + [f"{x:.3f},{y:.3f},{ti:.3f}" for (x, y), ti in zip(pts, t)]
        path = tmp_path / "events.csv"
        path.write_text("\n".join(rows) + "\n")
        rc = main(
            ["partition", str(path), "--parts-x", "4", "--parts-y", "4",
             "--bandwidth-x", "5", "--bandwidth-y", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "balanced" in out and "clique bound" in out


class TestNpc:
    def test_satisfiable_demo(self, capsys):
        rc = main(["npc", "--vars", "3", "--clauses", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "colorable with 14 colors: True" in out

    def test_fano_demo(self, capsys):
        rc = main(["npc", "--fano"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "colorable with 14 colors: False" in out


class TestService:
    def test_loadgen_spawn_verified(self, capsys):
        rc = main(["loadgen", "--spawn", "--requests", "12", "--concurrency", "2",
                   "--shapes", "8x8", "--distinct", "2", "--algorithm", "GLL",
                   "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 divergences vs direct color_with" in out
        assert "hit rate" in out


class TestStkde:
    def test_stkde_tiny(self, capsys):
        rc = main(["stkde", "--scale", "0.05", "--workers", "2",
                   "--bandwidth-divisor", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "colors-vs-runtime" in out


class TestRuntimeFlag:
    def test_runtime_choices_on_suite_and_bench(self):
        parser = build_parser()
        for cmd in ("suite", "bench-kernels"):
            assert parser.parse_args([cmd, "--runtime", "kernels"]).runtime == "kernels"
            assert parser.parse_args([cmd]).runtime is None
        with pytest.raises(SystemExit):
            parser.parse_args(["suite", "--runtime", "turbo"])

    def test_legacy_fast_path_flags_still_parse(self):
        parser = build_parser()
        assert parser.parse_args(["suite", "--fast-path"]).fast_path is True
        assert parser.parse_args(["suite", "--no-fast-path"]).fast_path is False
        assert parser.parse_args(["bench-kernels", "--fast-path"]).fast_path is True

    def test_fast_path_is_hidden_from_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--help"])
        help_text = capsys.readouterr().out
        assert "--runtime" in help_text
        assert "--fast-path" not in help_text

    def test_explicit_runtime_beats_legacy_alias(self):
        from repro.cli import _resolve_runtime

        parser = build_parser()
        args = parser.parse_args(["suite", "--runtime", "reference", "--fast-path"])
        assert _resolve_runtime(args) is False
        assert _resolve_runtime(parser.parse_args(["suite", "--fast-path"])) is True
        assert _resolve_runtime(parser.parse_args(["suite"])) is None

    def test_bench_kernels_single_runtime(self, capsys):
        rc = main(["bench-kernels", "--sizes", "24", "--sizes-3d", "8",
                   "--reps", "1", "--runtime", "kernels", "--out", ""])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernels only, not compared" in out


class TestTile:
    def test_tile_verify_synthetic(self, capsys):
        import json

        rc = main(["tile", "--shape", "40x30", "--tile", "16x16",
                   "--jobs", "1", "--verify"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verify"]["identical"] is True
        assert summary["tiles"] == 6
        assert summary["maxcolor"] == summary["verify"]["maxcolor"]

    def test_tile_from_npy_with_output(self, tmp_path, capsys):
        import json

        weights = np.random.default_rng(0).integers(
            1, 50, size=(20, 20), dtype=np.int64)
        src = tmp_path / "w.npy"
        np.save(src, weights)
        out = tmp_path / "starts.npy"
        rc = main(["tile", "--input", str(src), "--tile", "8x8",
                   "--jobs", "1", "--out", str(out), "--verify"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verify"]["identical"] is True
        assert np.load(out).shape == (20, 20)

    def test_tile_resume_from_log(self, tmp_path, capsys):
        import json

        log = tmp_path / "tiles.jsonl"
        rc = main(["tile", "--shape", "30x20", "--tile", "10x10",
                   "--jobs", "1", "--log", str(log)])
        assert rc == 0
        first = json.loads(capsys.readouterr().out)
        rc = main(["tile", "--shape", "30x20", "--tile", "10x10",
                   "--jobs", "1", "--log", str(log), "--resume"])
        assert rc == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["resumed_tiles"] == first["tiles"]
        assert resumed["digest"] == first["digest"]

    def test_tile_requires_exactly_one_source(self, capsys):
        assert main(["tile"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestSessions:
    """Offline `stencil-ivc sessions` against a populated spill directory."""

    @pytest.fixture()
    def spill(self, tmp_path):
        from repro.incremental.engine import full_recolor
        from repro.runtime.config import DurabilityConfig
        from repro.service.durability import SessionDurability
        from repro.service.sessions import RecolorSession

        store = SessionDurability(
            tmp_path / "sessions", DurabilityConfig(checkpoint_interval=0)
        )
        weights = np.random.default_rng(3).integers(
            1, 50, size=(8, 8), dtype=np.int64)
        starts = full_recolor(weights, "GLF")
        session = RecolorSession(
            session_id="cli-demo", algorithm="GLF", weights=weights,
            starts=starts, maxcolor=int((starts + weights).max()),
            created=0.0, touched=0.0,
        )
        store.record_seed(session)
        current = weights.copy()
        rng = np.random.default_rng(4)
        for seq in (1, 2, 3):
            idx = rng.choice(current.size, size=2, replace=False)
            vals = rng.integers(1, 50, size=2, dtype=np.int64)
            store.record_delta("cli-demo", seq, idx, vals)
            current.ravel()[idx] = vals
        return tmp_path

    def test_list_human_and_json(self, spill, capsys):
        import json

        rc = main(["sessions", "list", "--spill-dir", str(spill)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-demo" in out and "3 journal deltas" in out

        rc = main(["sessions", "list", "--spill-dir", str(spill), "--json"])
        assert rc == 0
        listed = json.loads(capsys.readouterr().out)
        assert listed[0]["session"] == "cli-demo"
        assert listed[0]["journal_deltas"] == 3

    def test_inspect_reports_recoverable(self, spill, capsys):
        import json

        rc = main(["sessions", "inspect", "cli-demo",
                   "--spill-dir", str(spill)])
        assert rc == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["recoverable"] is True
        assert detail["deltas_applied"] == 3
        assert detail["journal_seqs"] == [0, 1, 2, 3]

    def test_compact_folds_journal_into_checkpoint(self, spill, capsys):
        import json

        rc = main(["sessions", "compact", "cli-demo",
                   "--spill-dir", str(spill)])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["compacted"] is True and summary["seq"] == 3
        # The journal is now empty and the state lives in the checkpoint.
        rc = main(["sessions", "list", "--spill-dir", str(spill), "--json"])
        assert rc == 0
        listed = json.loads(capsys.readouterr().out)
        assert listed[0]["checkpoint_verified"] is True
        assert listed[0]["checkpoint_seq"] == 3
        assert listed[0]["journal_deltas"] == 0

    def test_inspect_requires_session_arg(self, capsys):
        assert main(["sessions", "inspect", "--spill-dir", "/tmp/x"]) == 2
        assert "needs a SESSION" in capsys.readouterr().err

    def test_missing_directory(self, tmp_path, capsys):
        rc = main(["sessions", "list", "--spill-dir", str(tmp_path / "no")])
        assert rc == 0
        assert "no durable sessions" in capsys.readouterr().out
        rc = main(["sessions", "inspect", "x",
                   "--spill-dir", str(tmp_path / "no")])
        assert rc == 1

    def test_unknown_session_inspect_fails(self, spill, capsys):
        rc = main(["sessions", "inspect", "nope", "--spill-dir", str(spill)])
        assert rc == 1
