"""API-stability tests: the documented public surface exists and works."""

import numpy as np
import pytest


class TestTopLevelExports:
    def test_documented_names_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet(self):
        """The README quickstart must run verbatim."""
        import numpy as np

        from repro import ALGORITHMS, IVCInstance, color, lower_bound
        from repro.core.algorithms.registry import color_with

        weights = np.random.default_rng(0).integers(0, 50, size=(16, 16))
        instance = IVCInstance.from_grid_2d(weights)
        result = color(weights, "BDP", validate=True)
        assert result.maxcolor >= lower_bound(instance)
        coloring = color_with(instance, "BDP").check()
        assert coloring.maxcolor == result.maxcolor
        assert set(ALGORITHMS) == {"GLL", "GZO", "GLF", "GKF", "SGK", "BD", "BDP"}

    def test_legacy_top_level_names_are_deprecated_shims(self):
        import warnings

        import repro

        instance = repro.IVCInstance.from_grid_2d(
            np.ones((4, 4), dtype=np.int64)
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.color_with(instance, "GLL")
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)


class TestSubpackageExports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.algorithms",
            "repro.core.exact",
            "repro.engine",
            "repro.stencil",
            "repro.npc",
            "repro.data",
            "repro.stkde",
            "repro.apps",
            "repro.analysis",
        ],
    )
    def test_all_exports_resolve(self, module):
        import importlib

        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_py_typed_marker_present(self):
        import pathlib

        import repro

        assert (pathlib.Path(repro.__file__).parent / "py.typed").exists()
