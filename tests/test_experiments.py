"""Tests for the shared suite driver."""

import numpy as np
import pytest

from repro.core.problem import IVCInstance
from repro.experiments import (
    EmptySuiteError,
    SuiteResult,
    run_suite,
    solve_suite_optimal,
)
from tests.conftest import random_2d_instances


@pytest.fixture(scope="module")
def suite_result():
    return run_suite(random_2d_instances(count=5, max_dim=5, max_w=8))


class TestRunSuite:
    def test_shapes(self, suite_result):
        assert suite_result.num_instances == 5
        for alg in suite_result.algorithms:
            assert len(suite_result.maxcolors[alg]) == 5
            assert len(suite_result.times[alg]) == 5
        assert len(suite_result.lower_bounds) == 5

    def test_all_algorithms_by_default(self, suite_result):
        assert set(suite_result.algorithms) == {
            "GLL", "GZO", "GLF", "GKF", "SGK", "BD", "BDP",
        }

    def test_maxcolors_at_least_bounds(self, suite_result):
        for alg in suite_result.algorithms:
            for mc, lb in zip(suite_result.maxcolors[alg], suite_result.lower_bounds):
                assert mc >= lb

    def test_subset_of_algorithms(self):
        res = run_suite(random_2d_instances(count=2), algorithms=["GLF", "BD"])
        assert res.algorithms == ["GLF", "BD"]

    def test_profile_builds(self, suite_result):
        prof = suite_result.profile()
        assert prof.num_instances == 5
        assert set(prof.algorithms) == set(suite_result.algorithms)

    def test_subset(self, suite_result):
        sub = suite_result.subset([0, 2])
        assert sub.num_instances == 2
        assert sub.maxcolors["GLF"] == [
            suite_result.maxcolors["GLF"][0],
            suite_result.maxcolors["GLF"][2],
        ]

    def test_profile_empty_suite_raises_typed_error(self):
        empty = SuiteResult(
            instances=[], maxcolors={}, times={}, lower_bounds=[], records=[]
        )
        with pytest.raises(EmptySuiteError, match="no instances"):
            empty.profile()

    def test_empty_suite_error_is_a_value_error(self):
        # Callers that caught the old cryptic ValueError keep working.
        assert issubclass(EmptySuiteError, ValueError)

    def test_indices_by_metadata(self):
        instances = [
            IVCInstance.from_grid_2d(
                np.ones((2, 2), dtype=int), metadata={"dataset": name}
            )
            for name in ("a", "b", "a")
        ]
        res = run_suite(instances, algorithms=["GLF"])
        assert res.indices_by_metadata("dataset", "a") == [0, 2]


class TestSolveOptimal:
    def test_solves_small_instances(self, suite_result):
        solved, optima = solve_suite_optimal(suite_result, time_limit=30.0)
        assert len(solved) == len(optima) == suite_result.num_instances
        for i, opt in zip(solved, optima):
            assert opt >= suite_result.lower_bounds[i]
            best = min(suite_result.maxcolors[a][i] for a in suite_result.algorithms)
            assert opt <= best

    def test_optima_match_bnb(self, suite_result):
        from repro.core.exact.branch_and_bound import solve_exact

        solved, optima = solve_suite_optimal(suite_result, time_limit=30.0)
        for i, opt in zip(solved[:3], optima[:3]):
            assert solve_exact(suite_result.instances[i]).maxcolor == opt
