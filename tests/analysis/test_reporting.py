"""Tests for table formatting."""

import pytest

from repro.analysis.reporting import banner, format_table


class TestFormatTable:
    def test_basic(self):
        text = format_table(("name", "value"), [("a", 1.0), ("bb", 2.5)])
        lines = text.split("\n")
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_floats_formatted(self):
        text = format_table(("x",), [(1.23456789,)])
        assert "1.235" in text

    def test_custom_float_format(self):
        text = format_table(("x",), [(1.23456789,)], float_fmt="{:.1f}")
        assert "1.2" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(("a", "b"), [("only-one",)])

    def test_alignment(self):
        text = format_table(("col",), [("x",), ("longer",)])
        lines = text.split("\n")
        assert len(lines[2]) == len(lines[3])


def test_banner():
    out = banner("hello", width=10)
    lines = out.split("\n")
    assert lines[0] == "=" * 10
    assert lines[1] == "hello"
