"""Tests for the summary statistics."""

import pytest

from repro.analysis.stats import (
    fraction_best,
    fraction_matching,
    mean_ratio_to,
    relative_slowdown,
    runtime_summary,
)


class TestMeanRatio:
    def test_basic(self):
        assert mean_ratio_to([10.0, 30.0], [10.0, 20.0]) == pytest.approx(1.25)

    def test_zero_reference_counts_as_one(self):
        assert mean_ratio_to([0.0, 20.0], [0.0, 10.0]) == pytest.approx(1.5)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            mean_ratio_to([1.0], [1.0, 2.0])


class TestFractions:
    def test_fraction_best(self):
        values = {"A": [1.0, 2.0, 3.0], "B": [1.0, 3.0, 2.0]}
        assert fraction_best(values, "A") == pytest.approx(2 / 3)
        assert fraction_best(values, "B") == pytest.approx(2 / 3)

    def test_fraction_matching(self):
        assert fraction_matching([5.0, 6.0, 7.0], [5.0, 6.0, 8.0]) == pytest.approx(2 / 3)


class TestRuntime:
    def test_summary(self):
        out = runtime_summary({"A": [1.0, 2.0, 3.0]})
        assert out["A"]["total"] == 6.0
        assert out["A"]["mean"] == 2.0
        assert out["A"]["max"] == 3.0

    def test_summary_empty(self):
        out = runtime_summary({"A": []})
        assert out["A"]["total"] == 0.0

    def test_relative_slowdown(self):
        times = {"slow": [2.0, 2.0], "fast": [1.0, 1.0]}
        assert relative_slowdown(times, "slow", "fast") == pytest.approx(100.0)
        assert relative_slowdown(times, "fast", "slow") == pytest.approx(-50.0)

    def test_relative_slowdown_zero_base(self):
        assert relative_slowdown({"a": [1.0], "b": [0.0]}, "a", "b") == float("inf")
        assert relative_slowdown({"a": [0.0], "b": [0.0]}, "a", "b") == 0.0
