"""Tests for the weight-regime statistics."""

import numpy as np
import pytest

from repro.analysis.instance_stats import WeightStats, suite_regime_table, weight_stats
from repro.core.problem import IVCInstance


class TestWeightStats:
    def test_constant_grid_is_smooth(self):
        inst = IVCInstance.from_grid_2d(np.full((6, 6), 7))
        stats = weight_stats(inst)
        assert stats.occupancy == 1.0
        assert stats.skew == 1.0
        assert stats.cv == 0.0
        assert stats.regime == "smooth"

    def test_sparse_grid_is_spiky(self):
        grid = np.zeros((8, 8), dtype=int)
        grid[0, 0] = 100
        grid[7, 7] = 3
        inst = IVCInstance.from_grid_2d(grid)
        stats = weight_stats(inst)
        assert stats.occupancy < 0.1
        assert stats.regime == "spiky"

    def test_heavy_tail_is_spiky(self):
        grid = np.ones((6, 6), dtype=int)
        grid[3, 3] = 500
        stats = weight_stats(IVCInstance.from_grid_2d(grid))
        assert stats.skew == 500.0
        assert stats.regime == "spiky"

    def test_all_zero(self):
        stats = weight_stats(IVCInstance.from_grid_2d(np.zeros((3, 3), dtype=int)))
        assert stats.occupancy == 0.0
        assert stats.skew == 0.0

    def test_empty_instance(self):
        inst = IVCInstance.from_edges(0, [], [])
        assert weight_stats(inst) == WeightStats(0.0, 0.0, 0.0, 0.0)

    def test_block_imbalance(self):
        grid = np.ones((3, 3), dtype=int)
        grid[0, 0] = 50
        stats = weight_stats(IVCInstance.from_grid_2d(grid))
        assert stats.block_imbalance > 1.5

    def test_generic_graph_has_no_block_stat(self):
        from repro.stencil.generic import path_graph

        inst = IVCInstance.from_graph(path_graph(4), [1, 2, 3, 4])
        assert weight_stats(inst).block_imbalance == 0.0

    def test_regimes_match_ablation_generators(self, rng):
        smooth = IVCInstance.from_grid_2d(rng.integers(45, 55, size=(16, 16)))
        assert weight_stats(smooth).regime == "smooth"
        sparse = np.zeros((16, 16), dtype=int)
        for i, j in rng.integers(0, 16, size=(20, 2)):
            sparse[i, j] += int(rng.integers(5, 60))
        assert weight_stats(IVCInstance.from_grid_2d(sparse)).regime == "spiky"


def test_suite_regime_table():
    instances = [
        IVCInstance.from_grid_2d(np.full((4, 4), 5), name="a"),
        IVCInstance.from_grid_2d(np.eye(4, dtype=int) * 90, name="b"),
    ]
    rows = suite_regime_table(instances)
    assert rows[0][0] == "a" and rows[0][1] == "smooth"
    assert rows[1][0] == "b" and rows[1][1] == "spiky"
