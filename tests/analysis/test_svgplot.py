"""Tests for the SVG figure rendering."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.performance_profiles import performance_profile
from repro.analysis.regression import linear_fit
from repro.analysis.svgplot import SVGCanvas, bars_svg, profile_svg, scatter_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestCanvas:
    def test_pixel_mapping(self):
        c = SVGCanvas(width=200, height=100, margin=10, xlim=(0, 10), ylim=(0, 5))
        assert c.px(0) == 10
        assert c.px(10) == 190
        assert c.py(0) == 90
        assert c.py(5) == 10

    def test_render_well_formed(self):
        c = SVGCanvas()
        c.axes("x", "y", title="t")
        c.polyline([0, 0.5, 1], [0, 0.5, 1], "#ff0000")
        c.circle(0.5, 0.5, 3, "#00ff00")
        c.text(10, 10, "hello & <goodbye>")
        root = parse(c.render())
        assert root.tag == f"{SVG_NS}svg"

    def test_degenerate_limits_no_crash(self):
        c = SVGCanvas(xlim=(1, 1), ylim=(2, 2))
        assert np.isfinite(c.px(1.0))
        assert np.isfinite(c.py(2.0))


class TestProfileSVG:
    def test_one_polyline_per_algorithm(self):
        prof = performance_profile({"A": [1.0, 2.0], "B": [2.0, 2.0], "C": [3.0, 2.0]})
        root = parse(profile_svg(prof))
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 3

    def test_legend_labels_present(self):
        prof = performance_profile({"GLF": [1.0], "BDP": [1.5]})
        svg = profile_svg(prof, title="Fig 5b")
        assert "GLF" in svg and "BDP" in svg and "Fig 5b" in svg


class TestScatterSVG:
    def test_points_and_fit(self):
        x = [1.0, 2.0, 3.0]
        y = [1.0, 2.1, 2.9]
        fit = linear_fit(x, y)
        root = parse(scatter_svg(x, y, ["a", "b", "c"], fit=fit))
        assert len(root.findall(f"{SVG_NS}circle")) == 3
        assert len(root.findall(f"{SVG_NS}polyline")) == 1

    def test_no_fit(self):
        root = parse(scatter_svg([1.0], [1.0], ["x"]))
        assert len(root.findall(f"{SVG_NS}polyline")) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter_svg([], [], [])


class TestBarsSVG:
    def test_one_rect_per_bar_plus_background(self):
        root = parse(bars_svg(["a", "b"], [1.0, 2.0]))
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 3  # background + 2 bars

    def test_labels_rendered(self):
        svg = bars_svg(["GLL", "SGK"], [0.1, 0.9], title="runtimes")
        assert "GLL" in svg and "SGK" in svg and "runtimes" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bars_svg([], [])
