"""Tests for performance profiles."""

import numpy as np
import pytest

from repro.analysis.performance_profiles import (
    performance_profile,
    profile_to_text,
)


@pytest.fixture
def simple_profile():
    # A always best; B 10% worse on half the instances.
    values = {"A": [10.0, 20.0, 30.0, 40.0], "B": [11.0, 20.0, 33.0, 40.0]}
    return performance_profile(values)


class TestProfile:
    def test_best_algorithm_at_tau_one(self, simple_profile):
        assert simple_profile.value_at("A", 1.0) == 1.0
        assert simple_profile.value_at("B", 1.0) == 0.5

    def test_curves_monotone(self, simple_profile):
        for row in simple_profile.curves:
            assert np.all(np.diff(row) >= 0)

    def test_curves_reach_one(self, simple_profile):
        assert np.all(simple_profile.curves[:, -1] == 1.0)

    def test_value_at_threshold(self, simple_profile):
        assert simple_profile.value_at("B", 1.1) == 1.0
        assert simple_profile.value_at("B", 1.05) == 0.5

    def test_winner(self, simple_profile):
        assert simple_profile.winner() == "A"
        assert simple_profile.auc("A") > simple_profile.auc("B")

    def test_num_instances(self, simple_profile):
        assert simple_profile.num_instances == 4

    def test_ratios(self, simple_profile):
        assert simple_profile.ratios[0].tolist() == [1.0, 1.0, 1.0, 1.0]
        assert simple_profile.ratios[1][0] == pytest.approx(1.1)


class TestExternalReference:
    def test_explicit_best(self):
        values = {"A": [10.0, 20.0]}
        prof = performance_profile(values, best=[5.0, 10.0])
        assert prof.ratios[0].tolist() == [2.0, 2.0]
        assert prof.value_at("A", 1.5) == 0.0
        assert prof.value_at("A", 2.0) == 1.0

    def test_best_length_checked(self):
        with pytest.raises(ValueError, match="one value per instance"):
            performance_profile({"A": [1.0, 2.0]}, best=[1.0])

    def test_zero_reference_handled(self):
        prof = performance_profile({"A": [0.0, 5.0], "B": [0.0, 5.0]})
        assert np.isfinite(prof.ratios).all()


class TestValidation:
    def test_needs_algorithms(self):
        with pytest.raises(ValueError):
            performance_profile({})

    def test_needs_instances(self):
        with pytest.raises(ValueError):
            performance_profile({"A": []})


class TestText:
    def test_renders_all_algorithms(self, simple_profile):
        text = profile_to_text(simple_profile)
        assert "A" in text and "B" in text
        assert "AUC" in text
        assert len(text.split("\n")) == 4
