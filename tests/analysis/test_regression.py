"""Tests for the linear-fit helper."""

import numpy as np
import pytest

from repro.analysis.regression import linear_fit


class TestLinearFit:
    def test_exact_line(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        fit = linear_fit(x, 2 * x + 1)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.rvalue == pytest.approx(1.0)

    def test_negative_correlation(self):
        x = np.array([1.0, 2.0, 3.0])
        fit = linear_fit(x, -x)
        assert fit.rvalue == pytest.approx(-1.0)

    def test_predict(self):
        fit = linear_fit([0.0, 1.0], [1.0, 3.0])
        assert fit.predict([2.0]).tolist() == [5.0]

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0, 2.0], [1.0])

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError, match="identical"):
            linear_fit([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])

    def test_noisy_positive(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 50)
        y = 3 * x + rng.normal(scale=1.0, size=50)
        fit = linear_fit(x, y)
        assert fit.rvalue > 0.95
        assert fit.slope == pytest.approx(3.0, abs=0.3)
