"""Fingerprint helpers: canonicalization, content keys, array digests.

``content_key`` must stay byte-identical to the pre-refactor
``service/protocol.py`` implementation — old JSONL spill files warm-start
new servers through these digests.  The golden digest below pins that.
"""

import numpy as np

from repro.runtime.fingerprint import array_digest, canonical_weights, content_key


class TestCanonicalWeights:
    def test_always_c_contiguous_int64(self):
        out = canonical_weights([[1, 2], [3, 4]])
        assert out.dtype == np.int64
        assert out.flags["C_CONTIGUOUS"]

    def test_fortran_order_and_int32_normalize(self):
        base = np.arange(12, dtype=np.int64).reshape(3, 4)
        fortran = np.asfortranarray(base.astype(np.int32))
        assert np.array_equal(canonical_weights(fortran), base)
        assert canonical_weights(fortran).tobytes() == base.tobytes()


class TestContentKey:
    def test_golden_digest(self):
        """Pin the digest format: blake2b-20 over 'ndim|shape|' + bytes + '|alg'."""
        import hashlib

        arr = np.arange(6, dtype=np.int64).reshape(2, 3)
        h = hashlib.blake2b(digest_size=20)
        h.update(b"2d|2x3|")
        h.update(arr.tobytes())
        h.update(b"|GLL")
        assert content_key(arr, "GLL") == h.hexdigest()
        assert len(content_key(arr, "GLL")) == 40  # 20-byte digest, hex

    def test_equal_content_collides(self):
        a = [[5, 1], [2, 9]]
        b = np.array(a, dtype=np.int32)
        c = np.asfortranarray(np.array(a, dtype=np.int64))
        assert content_key(a, "BD") == content_key(b, "BD") == content_key(c, "BD")

    def test_algorithm_distinguishes(self):
        arr = np.ones((3, 3), dtype=np.int64)
        assert content_key(arr, "GLL") != content_key(arr, "GZO")

    def test_shape_distinguishes_same_bytes(self):
        flat = np.arange(6, dtype=np.int64)
        assert content_key(flat.reshape(2, 3), "GLL") != content_key(
            flat.reshape(3, 2), "GLL"
        )
        assert content_key(flat, "GLL") != content_key(flat.reshape(2, 3), "GLL")

    def test_values_distinguish(self):
        a = np.zeros((2, 2), dtype=np.int64)
        b = a.copy()
        b[1, 1] = 1
        assert content_key(a, "GLL") != content_key(b, "GLL")

    def test_service_protocol_reexports_same_function(self):
        from repro.service import protocol

        assert protocol.content_key is content_key


class TestArrayDigest:
    def test_deterministic_and_sized(self):
        arr = np.arange(10, dtype=np.int64)
        d = array_digest(arr)
        assert d == array_digest(arr.copy())
        assert len(d) == 16
        assert len(array_digest(arr, digest_size=8)) == 8

    def test_noncontiguous_input_handled(self):
        arr = np.arange(20, dtype=np.int64)
        strided = arr[::2]
        assert array_digest(strided) == array_digest(strided.copy())

    def test_content_sensitivity(self):
        a = np.arange(10, dtype=np.int64)
        b = a.copy()
        b[0] = 99
        assert array_digest(a) != array_digest(b)
