"""Fast-path precedence: explicit arg > legacy switch > config mode > env."""

import pytest

import repro.runtime.fastpath as fastpath
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import ExecutionContext, set_default_context
from repro.runtime.fastpath import (
    fast_paths,
    fast_paths_enabled,
    resolve_fast,
    resolve_fast_for,
    set_fast_paths,
)


@pytest.fixture(autouse=True)
def _no_override(monkeypatch):
    """Each test starts with no legacy switch and a fresh default context."""
    monkeypatch.setattr(fastpath, "_override", None)
    set_default_context(None)
    yield
    set_default_context(None)


def _ctx(mode, min_size=100):
    return ExecutionContext(
        RuntimeConfig(fast_paths=mode, fast_paths_min_size=min_size)
    )


class TestExplicitArgument:
    def test_beats_everything(self):
        set_fast_paths(False)
        assert resolve_fast_for(True, 1, context=_ctx("off")) is True
        set_fast_paths(True)
        assert resolve_fast_for(False, 10**6, context=_ctx("on")) is False

    def test_resolve_fast_normalizes(self):
        assert resolve_fast(True, context=_ctx("off")) is True
        assert resolve_fast(False, context=_ctx("on")) is False


class TestLegacySwitch:
    def test_beats_config_mode(self):
        set_fast_paths(False)
        assert resolve_fast_for(None, 10**6, context=_ctx("on")) is False
        set_fast_paths(True)
        assert resolve_fast_for(None, 10**6, context=_ctx("off")) is True

    def test_true_keeps_auto_size_threshold(self):
        """set_fast_paths(True) restores auto behaviour, not force-on."""
        set_fast_paths(True)
        ctx = _ctx("auto", min_size=100)
        assert resolve_fast_for(None, 99, context=ctx) is False
        assert resolve_fast_for(None, 100, context=ctx) is True

    def test_scoped_override_restores_previous_state(self):
        ctx = _ctx("on")
        with fast_paths(False):
            assert resolve_fast_for(None, 10**6, context=ctx) is False
        # no override before the block -> back to following the config
        assert fastpath._override is None
        assert resolve_fast_for(None, 10**6, context=ctx) is True

    def test_scoped_override_nests(self):
        set_fast_paths(True)
        with fast_paths(False):
            assert fast_paths_enabled() is False
        assert fastpath._override is True


class TestConfigMode:
    def test_off_on_auto(self):
        assert resolve_fast_for(None, 10**6, context=_ctx("off")) is False
        assert resolve_fast_for(None, 1, context=_ctx("on")) is True
        auto = _ctx("auto", min_size=100)
        assert resolve_fast_for(None, 99, context=auto) is False
        assert resolve_fast_for(None, 100, context=auto) is True

    def test_enabled_means_not_off(self):
        assert fast_paths_enabled(_ctx("off")) is False
        assert fast_paths_enabled(_ctx("on")) is True
        assert fast_paths_enabled(_ctx("auto")) is True


class TestEnvironmentLayer:
    def test_ambient_context_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATHS", "off")
        set_default_context(None)  # force a rebuild under the patched env
        assert resolve_fast_for(None, 10**6) is False
        monkeypatch.setenv("REPRO_FAST_PATHS", "on")
        set_default_context(None)
        assert resolve_fast_for(None, 1) is True

    def test_explicit_context_ignores_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATHS", "off")
        assert resolve_fast_for(None, 10**6, context=_ctx("on")) is True


class TestKernelsConfigShim:
    def test_reexports_are_the_same_objects(self):
        from repro.kernels import config as shim

        assert shim.set_fast_paths is set_fast_paths
        assert shim.resolve_fast_for is resolve_fast_for
        assert shim.fast_paths is fast_paths
        assert shim.MIN_AUTO_SIZE == fastpath.MIN_AUTO_SIZE
