"""ExecutionContext behavior: ambient resolution, children, scoped state."""

import asyncio
import threading

import pytest

from repro.obs import MetricsRegistry
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import (
    ExecutionContext,
    get_context,
    set_default_context,
    use_context,
)


@pytest.fixture(autouse=True)
def _fresh_default(monkeypatch):
    """Isolate the process-default context and legacy fast-path switch."""
    import repro.runtime.fastpath as fastpath

    monkeypatch.setattr(fastpath, "_override", None)
    set_default_context(None)
    yield
    set_default_context(None)


class TestAmbientResolution:
    def test_default_context_is_lazy_and_stable(self):
        first = get_context()
        assert get_context() is first

    def test_use_context_wins_over_default(self):
        ctx = ExecutionContext(RuntimeConfig(seed=7))
        with use_context(ctx):
            assert get_context() is ctx
        assert get_context() is not ctx

    def test_use_context_nests_and_restores(self):
        outer = ExecutionContext()
        inner = ExecutionContext()
        with use_context(outer):
            with use_context(inner):
                assert get_context() is inner
            assert get_context() is outer

    def test_set_default_context_replaces_process_default(self):
        ctx = ExecutionContext()
        set_default_context(ctx)
        assert get_context() is ctx
        set_default_context(None)
        assert get_context() is not ctx

    def test_asyncio_tasks_inherit_current_context(self):
        ctx = ExecutionContext()

        async def inner():
            return get_context()

        async def run():
            with use_context(ctx):
                return await asyncio.create_task(inner())

        assert asyncio.run(run()) is ctx

    def test_plain_threads_do_not_inherit(self):
        """Documented caveat: executor threads must re-enter use_context."""
        ctx = ExecutionContext()
        seen = []
        with use_context(ctx):
            t = threading.Thread(target=lambda: seen.append(get_context()))
            t.start()
            t.join()
        assert seen[0] is not ctx


class TestChild:
    def test_child_shares_scoped_state(self):
        parent = ExecutionContext()
        child = parent.child(metrics=MetricsRegistry())
        sentinel = object()
        assert parent.scoped("k", lambda: sentinel) is sentinel
        assert child.scoped("k", lambda: object()) is sentinel

    def test_child_swaps_metrics_keeps_config(self):
        parent = ExecutionContext(RuntimeConfig(seed=3))
        metrics = MetricsRegistry()
        child = parent.child(metrics=metrics)
        assert child.metrics is metrics
        assert child.metrics is not parent.metrics
        assert child.config is parent.config

    def test_child_can_swap_config(self):
        parent = ExecutionContext()
        child = parent.child(config=RuntimeConfig(fast_paths="off"))
        assert child.config.fast_paths == "off"
        assert parent.config.fast_paths == "auto"


class TestScopedState:
    def test_factory_runs_once(self):
        ctx = ExecutionContext()
        calls = []
        for _ in range(3):
            ctx.scoped("cache", lambda: calls.append(1) or {"built": True})
        assert calls == [1]

    def test_clear_scoped_rebuilds(self):
        ctx = ExecutionContext()
        first = ctx.scoped("cache", dict)
        ctx.clear_scoped("cache")
        assert ctx.scoped("cache", dict) is not first

    def test_keys_are_independent(self):
        ctx = ExecutionContext()
        a = ctx.scoped("a", dict)
        b = ctx.scoped("b", dict)
        assert a is not b

    def test_scoped_is_thread_safe(self):
        ctx = ExecutionContext()
        built = []
        barrier = threading.Barrier(8)

        def hit():
            barrier.wait()
            ctx.scoped("cache", lambda: built.append(1) or object())

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(built) == 1


class TestInstallFaults:
    def test_empty_spec_preserves_installed_plan(self):
        from repro.resilience.faults import (
            active_plan,
            clear_plan,
            install_plan,
            parse_fault_spec,
        )

        plan = parse_fault_spec("seed=1;engine.cell:crash=0.5,max=1")
        install_plan(plan)
        try:
            ExecutionContext(RuntimeConfig(fault_spec="   ")).install_faults()
            assert active_plan() is plan
        finally:
            clear_plan()

    def test_nonempty_spec_installs(self):
        from repro.resilience.faults import active_plan, clear_plan

        spec = "seed=9;service.compute:error=1.0,max=2"
        try:
            ExecutionContext(RuntimeConfig(fault_spec=spec)).install_faults()
            plan = active_plan()
            assert plan is not None and plan.seed == 9
        finally:
            clear_plan()


class TestResolveFast:
    def test_follows_config_mode(self):
        on = ExecutionContext(RuntimeConfig(fast_paths="on"))
        off = ExecutionContext(RuntimeConfig(fast_paths="off"))
        auto = ExecutionContext(
            RuntimeConfig(fast_paths="auto", fast_paths_min_size=100)
        )
        assert on.resolve_fast(None, 1) is True
        assert off.resolve_fast(None, 10**6) is False
        assert auto.resolve_fast(None, 99) is False
        assert auto.resolve_fast(None, 100) is True

    def test_explicit_argument_wins(self):
        off = ExecutionContext(RuntimeConfig(fast_paths="off"))
        assert off.resolve_fast(True, 1) is True
        on = ExecutionContext(RuntimeConfig(fast_paths="on"))
        assert on.resolve_fast(False, 10**6) is False
