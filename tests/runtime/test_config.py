"""RuntimeConfig: defaults, environment overrides, and precedence.

The documented order (highest wins): explicit per-call args > explicit
config/overrides > ``REPRO_*`` environment > dataclass defaults.
"""

import pytest

from repro.runtime.config import (
    RuntimeConfig,
    env_bool,
    env_float,
    env_int,
    env_str,
)


class TestDefaults:
    def test_field_defaults(self):
        config = RuntimeConfig()
        assert config.fast_paths == "auto"
        assert config.fast_paths_min_size == 4096
        assert config.substrate_cache_size == 32
        assert config.wavefront_cache_size == 8
        assert config.fault_spec == ""
        assert config.max_cell_retries == 3
        assert config.seed == 0

    def test_direct_construction_ignores_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATHS", "off")
        monkeypatch.setenv("REPRO_WAVEFRONT_CACHE_SIZE", "99")
        config = RuntimeConfig()
        assert config.fast_paths == "auto"
        assert config.wavefront_cache_size == 8

    def test_picklable(self):
        import pickle

        config = RuntimeConfig(fast_paths="on", seed=7)
        assert pickle.loads(pickle.dumps(config)) == config


class TestNormalization:
    def test_legacy_booleans_map_to_tristate(self):
        assert RuntimeConfig(fast_paths=True).fast_paths == "on"
        assert RuntimeConfig(fast_paths=False).fast_paths == "off"
        assert RuntimeConfig(fast_paths=None).fast_paths == "auto"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="fast_paths"):
            RuntimeConfig(fast_paths="sometimes")

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError, match="wavefront_cache_size"):
            RuntimeConfig(wavefront_cache_size=-1)
        with pytest.raises(ValueError, match="max_cell_retries"):
            RuntimeConfig(max_cell_retries=-2)


class TestFromEnv:
    def test_environment_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATHS", "0")
        monkeypatch.setenv("REPRO_FAST_PATHS_MIN_SIZE", "128")
        monkeypatch.setenv("REPRO_SUBSTRATE_CACHE_SIZE", "5")
        monkeypatch.setenv("REPRO_WAVEFRONT_CACHE_SIZE", "3")
        monkeypatch.setenv("REPRO_FAULTS", "seed=1;engine.cell:crash=0.5,max=1")
        monkeypatch.setenv("REPRO_MAX_CELL_RETRIES", "9")
        monkeypatch.setenv("REPRO_SEED", "42")
        config = RuntimeConfig.from_env()
        assert config.fast_paths == "off"
        assert config.fast_paths_min_size == 128
        assert config.substrate_cache_size == 5
        assert config.wavefront_cache_size == 3
        assert config.fault_spec == "seed=1;engine.cell:crash=0.5,max=1"
        assert config.max_cell_retries == 9
        assert config.seed == 42

    @pytest.mark.parametrize(
        "raw,mode",
        [
            ("0", "off"), ("off", "off"), ("false", "off"), ("no", "off"),
            ("on", "on"), ("force", "on"),
            ("1", "auto"), ("yes", "auto"), ("auto", "auto"),
        ],
    )
    def test_fast_path_mode_parsing(self, monkeypatch, raw, mode):
        monkeypatch.setenv("REPRO_FAST_PATHS", raw)
        assert RuntimeConfig.from_env().fast_paths == mode

    def test_explicit_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATHS", "off")
        monkeypatch.setenv("REPRO_SEED", "42")
        config = RuntimeConfig.from_env(fast_paths="on", seed=7)
        assert config.fast_paths == "on"
        assert config.seed == 7

    def test_none_override_falls_through_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "42")
        assert RuntimeConfig.from_env(seed=None).seed == 42

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError, match="wavefronts"):
            RuntimeConfig.from_env(wavefronts=2)

    def test_service_knobs_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "4")
        monkeypatch.setenv("REPRO_SERVICE_WIRE", "Binary")
        config = RuntimeConfig.from_env()
        assert config.service_workers == 4
        assert config.service_wire == "binary"

    def test_service_knob_defaults(self):
        config = RuntimeConfig()
        assert config.service_workers == 1
        assert config.service_wire == "auto"

    def test_service_knob_validation(self):
        with pytest.raises(ValueError, match="service_workers"):
            RuntimeConfig(service_workers=0)
        with pytest.raises(ValueError, match="service_wire"):
            RuntimeConfig(service_wire="carrier-pigeon")

    def test_defaults_without_environment(self, monkeypatch):
        for name in (
            "REPRO_FAST_PATHS", "REPRO_FAST_PATHS_MIN_SIZE",
            "REPRO_SUBSTRATE_CACHE_SIZE", "REPRO_WAVEFRONT_CACHE_SIZE",
            "REPRO_FAULTS", "REPRO_MAX_CELL_RETRIES", "REPRO_SEED",
        ):
            monkeypatch.delenv(name, raising=False)
        assert RuntimeConfig.from_env() == RuntimeConfig()


class TestWithOverrides:
    def test_applies_changes_and_keeps_rest(self):
        base = RuntimeConfig(seed=1)
        derived = base.with_overrides(wavefront_cache_size=2)
        assert derived.wavefront_cache_size == 2
        assert derived.seed == 1
        assert base.wavefront_cache_size == 8  # frozen original untouched

    def test_none_values_are_skipped(self):
        base = RuntimeConfig(seed=5)
        assert base.with_overrides(seed=None) is base


class TestEnvHelpers:
    def test_env_str(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_X", "abc")
        assert env_str("REPRO_TEST_X", "d") == "abc"
        monkeypatch.delenv("REPRO_TEST_X")
        assert env_str("REPRO_TEST_X", "d") == "d"

    def test_env_int_blank_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_X", "  ")
        assert env_int("REPRO_TEST_X", 3) == 3
        monkeypatch.setenv("REPRO_TEST_X", "17")
        assert env_int("REPRO_TEST_X", 3) == 17

    def test_env_float(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_X", "0.25")
        assert env_float("REPRO_TEST_X", 1.0) == 0.25

    def test_env_bool(self, monkeypatch):
        for falsy in ("0", "false", "NO", "off", ""):
            monkeypatch.setenv("REPRO_TEST_X", falsy)
            assert env_bool("REPRO_TEST_X", True) is False
        monkeypatch.setenv("REPRO_TEST_X", "1")
        assert env_bool("REPRO_TEST_X", False) is True
        monkeypatch.delenv("REPRO_TEST_X")
        assert env_bool("REPRO_TEST_X", True) is True
