"""Property-based tests for the balanced rectilinear partitioner."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import balance_cuts_1d, part_loads


@given(
    counts=st.lists(st.integers(0, 30), min_size=4, max_size=40),
    parts=st.integers(1, 6),
    min_slots=st.integers(1, 4),
)
@settings(max_examples=80, deadline=None)
def test_cuts_are_well_formed(counts, parts, min_slots):
    counts = np.asarray(counts)
    if parts * min_slots > len(counts):
        return
    cuts = balance_cuts_1d(counts, parts, min_slots=min_slots)
    assert cuts[0] == 0 and cuts[-1] == len(counts)
    widths = np.diff(cuts)
    assert len(widths) == parts
    assert (widths >= min_slots).all()
    assert part_loads(counts, cuts).sum() == counts.sum()


@given(
    counts=st.lists(st.integers(0, 30), min_size=6, max_size=30),
    parts=st.integers(2, 5),
)
@settings(max_examples=60, deadline=None)
def test_balanced_never_worse_than_uniform(counts, parts):
    """The optimized cuts' max load never exceeds the equal-width split's."""
    counts = np.asarray(counts)
    if parts > len(counts):
        return
    balanced = balance_cuts_1d(counts, parts, min_slots=1)
    uniform = np.linspace(0, len(counts), parts + 1).astype(np.int64)
    if len(np.unique(uniform)) != parts + 1:
        return  # degenerate equal-width split
    assert part_loads(counts, balanced).max() <= part_loads(counts, uniform).max()


@given(
    counts=st.lists(st.integers(0, 20), min_size=4, max_size=14),
    parts=st.integers(2, 4),
)
@settings(max_examples=40, deadline=None)
def test_max_load_lower_bounds(counts, parts):
    """The optimal cap is at least total/parts and at least the max single
    slot (when widths allow singleton parts)."""
    counts = np.asarray(counts)
    if parts > len(counts):
        return
    cuts = balance_cuts_1d(counts, parts, min_slots=1)
    cap = int(part_loads(counts, cuts).max())
    assert cap >= int(np.ceil(counts.sum() / parts))
    assert cap >= int(counts.max(initial=0))
