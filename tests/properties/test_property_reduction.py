"""Property-based tests for the NAE-3SAT reduction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npc.nae3sat import NAE3SAT
from repro.npc.reduction import (
    assignment_from_coloring,
    build_reduction,
    coloring_from_assignment,
)


@st.composite
def formulas(draw, max_vars=6, max_clauses=4):
    n = draw(st.integers(3, max_vars))
    m = draw(st.integers(1, max_clauses))
    clauses = []
    for _ in range(m):
        trio = draw(
            st.lists(st.integers(0, n - 1), min_size=3, max_size=3, unique=True)
        )
        clauses.append(tuple(sorted(trio)))
    return NAE3SAT(num_vars=n, clauses=tuple(clauses))


@given(formula=formulas())
@settings(max_examples=25, deadline=None)
def test_reduction_structure_invariants(formula):
    red = build_reduction(formula)
    n, m = formula.num_vars, formula.num_clauses
    assert red.instance.geometry.shape == (2 * n + 10, 9, 2 * m)
    values = set(np.unique(red.instance.weights).tolist())
    assert values <= {0, 3, 7}
    # One tube 7 per variable per layer plus the wires; threes = 3 per clause.
    assert int((red.instance.weights == 3).sum()) == 3 * m
    # Every terminal has even parity (wire-length invariant).
    for terminals, _threes in red.clause_gadgets:
        for t in terminals:
            assert red.seven_cells[t][1] == 0


@given(formula=formulas(max_vars=5, max_clauses=3))
@settings(max_examples=15, deadline=None)
def test_witness_and_extraction_roundtrip(formula):
    assignment = formula.solve_brute_force()
    if assignment is None:
        return  # rare for monotone instances this small
    red = build_reduction(formula)
    witness = coloring_from_assignment(red, assignment)
    assert witness.maxcolor <= red.k
    extracted = assignment_from_coloring(red, witness)
    assert extracted == assignment
    # The complement assignment also yields a valid witness (NAE symmetry).
    complement = tuple(not v for v in assignment)
    witness2 = coloring_from_assignment(red, complement)
    assert witness2.maxcolor <= red.k


@given(formula=formulas(max_vars=4, max_clauses=2), seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_seven_chains_alternate(formula, seed):
    """In any witness coloring, adjacent 7s occupy opposite halves."""
    assignment = formula.solve_brute_force()
    if assignment is None:
        return
    red = build_reduction(formula)
    witness = coloring_from_assignment(red, assignment)
    flat = {red.flat_id(c): c for c in red.seven_cells}
    for v, cell in flat.items():
        for u in red.instance.graph.neighbors(v):
            u = int(u)
            if u in flat:
                assert witness.starts[v] != witness.starts[u]
                assert {int(witness.starts[v]), int(witness.starts[u])} == {0, 7}
