"""Property-based tests: incremental recoloring vs recoloring from scratch.

Hypothesis drives random grids (2D and 3D, zero weights included), random
sparse dirty sets, and every registry algorithm that declares a fast path
through :func:`repro.incremental.engine.recolor_grid`, requiring the result
to be bit-identical to a cold :func:`full_recolor` of the new weights.  The
supported algorithms (GLL/GZO/GLF) exercise the cone walk; the rest must
take the always-correct fallback.  Edge cases get dedicated properties: a
delta touching the grid boundary, and a delta rewriting the whole grid with
the cone budget opened wide enough that the cone — not the fallback — must
reproduce the from-scratch answer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms.registry import REGISTRY
from repro.incremental.engine import (
    SUPPORTED_ALGORITHMS,
    full_recolor,
    recolor_grid,
)

FAST_ALGORITHMS = tuple(
    spec.name for spec in REGISTRY.specs() if spec.fast_fn is not None
)

grids_2d = st.tuples(st.integers(2, 7), st.integers(2, 7))
grids_3d = st.tuples(st.integers(2, 4), st.integers(2, 4), st.integers(2, 4))
grids = st.one_of(grids_2d, grids_3d)
seeds = st.integers(0, 100_000)
algorithms = st.sampled_from(FAST_ALGORITHMS)


def _weights(shape, seed):
    # From 0: zero-weight vertices are skipped by first-fit and must be
    # skipped identically inside the cone walk.
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10, size=shape).astype(np.int64)


def _mutate(weights, dirty, seed):
    rng = np.random.default_rng(seed)
    out = weights.copy()
    out.ravel()[dirty] = rng.integers(0, 10, size=np.asarray(dirty).size)
    return out


def _check_identical(algorithm, old_weights, new_weights, dirty, **kwargs):
    base = full_recolor(old_weights, algorithm)
    outcome = recolor_grid(
        new_weights, base, dirty, algorithm=algorithm, **kwargs
    )
    cold = full_recolor(new_weights, algorithm)
    assert np.array_equal(outcome.starts, cold), (
        algorithm, old_weights.shape, outcome.mode, outcome.fallback_reason
    )
    assert outcome.maxcolor == int((cold + new_weights).max())
    return outcome


@given(shape=grids, seed=seeds, delta_seed=seeds, algorithm=algorithms)
@settings(max_examples=60, deadline=None)
def test_sparse_delta_matches_full_recolor(shape, seed, delta_seed, algorithm):
    weights = _weights(shape, seed)
    rng = np.random.default_rng(delta_seed)
    n = weights.size
    k = int(rng.integers(1, max(2, n // 4)))
    dirty = rng.choice(n, size=min(k, n), replace=False)
    new_weights = _mutate(weights, dirty, delta_seed)
    outcome = _check_identical(algorithm, weights, new_weights, dirty)
    if algorithm not in SUPPORTED_ALGORITHMS:
        assert outcome.mode == "fallback"
        assert outcome.fallback_reason == "unsupported-algorithm"


@given(shape=grids, seed=seeds, delta_seed=seeds, algorithm=algorithms)
@settings(max_examples=40, deadline=None)
def test_boundary_touching_delta_matches_full_recolor(
    shape, seed, delta_seed, algorithm
):
    weights = _weights(shape, seed)
    n = weights.size
    # Both extreme corners: the cone walk must clip its neighbor gathers at
    # the grid boundary exactly like the from-scratch kernels do.
    dirty = np.array([0, n - 1], dtype=np.int64)
    new_weights = _mutate(weights, dirty, delta_seed)
    _check_identical(
        algorithm, weights, new_weights, dirty, max_cone_fraction=1.0
    )


@given(shape=grids, seed=seeds, delta_seed=seeds, algorithm=algorithms)
@settings(max_examples=30, deadline=None)
def test_whole_grid_delta_with_open_budget(shape, seed, delta_seed, algorithm):
    weights = _weights(shape, seed)
    n = weights.size
    dirty = np.arange(n, dtype=np.int64)
    new_weights = _mutate(weights, dirty, delta_seed)
    # Budget opened to the full grid: for supported algorithms the cone walk
    # itself (not the fallback) must reproduce the from-scratch coloring
    # even when every cell is dirty.
    outcome = _check_identical(
        algorithm, weights, new_weights, dirty, max_cone_fraction=1.0
    )
    if algorithm in SUPPORTED_ALGORITHMS:
        assert outcome.mode == "incremental"
        assert outcome.cells_recomputed >= n


@given(shape=grids, seed=seeds, delta_seed=seeds)
@settings(max_examples=20, deadline=None)
def test_whole_grid_delta_trips_default_budget(shape, seed, delta_seed):
    weights = _weights(shape, seed)
    n = weights.size
    dirty = np.arange(n, dtype=np.int64)
    new_weights = _mutate(weights, dirty, delta_seed)
    outcome = _check_identical(
        "GLL", weights, new_weights, dirty, max_cone_fraction=0.05
    )
    assert outcome.mode == "fallback"
    assert outcome.fallback_reason == "cone-budget"


@given(shape=grids, seed=seeds, algorithm=algorithms)
@settings(max_examples=20, deadline=None)
def test_empty_delta_is_identity(shape, seed, algorithm):
    weights = _weights(shape, seed)
    base = full_recolor(weights, algorithm)
    outcome = recolor_grid(
        weights, base, np.array([], dtype=np.int64), algorithm=algorithm
    )
    assert outcome.mode == "incremental"
    assert outcome.cells_changed == 0
    assert np.array_equal(outcome.starts, base)
