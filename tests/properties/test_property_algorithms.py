"""Property-based tests for the coloring algorithms and bounds."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.core.bounds import lower_bound, odd_cycle_optimum
from repro.core.problem import IVCInstance

grids_2d = st.tuples(st.integers(2, 5), st.integers(2, 5))
grids_3d = st.tuples(st.integers(2, 4), st.integers(2, 4), st.integers(2, 3))


@given(shape=grids_2d, seed=st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_all_algorithms_valid_and_bounded_2d(shape, seed):
    rng = np.random.default_rng(seed)
    inst = IVCInstance.from_grid_2d(rng.integers(0, 15, size=shape))
    lb = lower_bound(inst)
    for name in ALGORITHMS:
        coloring = color_with(inst, name)
        assert coloring.is_valid(), name
        assert coloring.maxcolor >= lb, name


@given(shape=grids_3d, seed=st.integers(0, 100_000))
@settings(max_examples=12, deadline=None)
def test_all_algorithms_valid_and_bounded_3d(shape, seed):
    rng = np.random.default_rng(seed)
    inst = IVCInstance.from_grid_3d(rng.integers(0, 10, size=shape))
    lb = lower_bound(inst)
    for name in ALGORITHMS:
        coloring = color_with(inst, name)
        assert coloring.is_valid(), name
        assert coloring.maxcolor >= lb, name


@given(shape=grids_2d, seed=st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_bd_within_twice_its_bound(shape, seed):
    from repro.core.algorithms.bipartite_decomposition import bd_with_bound

    rng = np.random.default_rng(seed)
    inst = IVCInstance.from_grid_2d(rng.integers(0, 20, size=shape))
    coloring, rc = bd_with_bound(inst)
    assert coloring.maxcolor <= 2 * rc


@given(shape=grids_2d, seed=st.integers(0, 100_000))
@settings(max_examples=15, deadline=None)
def test_bdp_never_worse_than_bd(shape, seed):
    rng = np.random.default_rng(seed)
    inst = IVCInstance.from_grid_2d(rng.integers(0, 20, size=shape))
    assert color_with(inst, "BDP").maxcolor <= color_with(inst, "BD").maxcolor


@given(
    weights=st.lists(st.integers(1, 15), min_size=3, max_size=9).filter(
        lambda w: len(w) % 2 == 1
    )
)
@settings(max_examples=30, deadline=None)
def test_odd_cycle_theorem_against_exact(weights):
    """Theorem 1 cross-checked against the independent CSP solver."""
    from repro.core.exact.branch_and_bound import solve_exact
    from repro.core.exact.special_cases import color_odd_cycle
    from repro.stencil.generic import cycle_graph

    inst = IVCInstance.from_graph(cycle_graph(len(weights)), weights)
    theorem = odd_cycle_optimum(weights)
    constructed = color_odd_cycle(inst)
    assert constructed.is_valid()
    assert constructed.maxcolor == theorem
    assert solve_exact(inst).maxcolor == theorem


@given(
    weights=st.lists(st.integers(0, 12), min_size=2, max_size=8),
)
@settings(max_examples=30, deadline=None)
def test_chain_color_optimal(weights):
    from repro.core.algorithms.bipartite_decomposition import chain_color

    starts, rc = chain_color(np.asarray(weights))
    w = np.asarray(weights)
    ends = starts + w
    # Validity along the chain.
    for a in range(len(w) - 1):
        if w[a] and w[a + 1]:
            assert ends[a] <= starts[a + 1] or ends[a + 1] <= starts[a]
    # Optimality: rc equals the chain lower bound.
    pair_max = max(
        [int(w.max(initial=0))] + [int(w[i] + w[i + 1]) for i in range(len(w) - 1)]
    )
    assert rc == pair_max
    assert int(ends.max(initial=0)) <= rc


@given(
    x=st.integers(0, 2**20),
    y=st.integers(0, 2**20),
    u=st.integers(0, 2**20),
    v=st.integers(0, 2**20),
)
def test_morton_keys_injective(x, y, u, v):
    from repro.stencil.zorder import morton_key_2d

    if (x, y) != (u, v):
        assert morton_key_2d(x, y) != morton_key_2d(u, v)
