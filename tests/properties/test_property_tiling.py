"""Property: the tiler is bit-identical to the monolithic GLL kernel on
arbitrary grids and tile shapes, 2D and 3D."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms.registry import color_with
from repro.core.problem import IVCInstance
from repro.tiling import color_tiled


def _monolithic_starts(weights):
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name="prop")
    else:
        instance = IVCInstance.from_grid_3d(weights, name="prop")
    coloring = color_with(instance, "GLL")
    return np.asarray(coloring.starts).ravel(), coloring.maxcolor


@given(
    dims=st.tuples(st.integers(1, 14), st.integers(1, 14)),
    tile=st.tuples(st.integers(1, 7), st.integers(1, 7)),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_tiled_matches_monolithic_2d(dims, tile, seed):
    rng = np.random.default_rng(seed)
    weights = rng.integers(0, 50, size=dims, dtype=np.int64)
    tiled = color_tiled(weights, tile_shape=tile, jobs=1)
    starts, maxcolor = _monolithic_starts(weights)
    assert tiled.maxcolor == maxcolor
    np.testing.assert_array_equal(np.asarray(tiled.starts).ravel(), starts)


@given(
    dims=st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
    tile=st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_tiled_matches_monolithic_3d(dims, tile, seed):
    rng = np.random.default_rng(seed)
    weights = rng.integers(0, 50, size=dims, dtype=np.int64)
    tiled = color_tiled(weights, tile_shape=tile, jobs=1)
    starts, maxcolor = _monolithic_starts(weights)
    assert tiled.maxcolor == maxcolor
    np.testing.assert_array_equal(np.asarray(tiled.starts).ravel(), starts)
