"""Property-based differential tests: vectorized kernels vs reference loops.

Hypothesis drives random grid shapes, weights (including zeros), and vertex
orders through both code paths and requires bit-identical starts.  The SGK
block-fill optimization is checked against a naive re-implementation that
rebuilds every neighbor snapshot inside the permutation loop — the exact
semantics the hoisted version must preserve.
"""

from itertools import permutations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms.clique_first import _best_permutation_fill, _sorted_blocks
from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.core.greedy_engine import (
    UNCOLORED,
    first_fit_start,
    greedy_color,
    greedy_recolor_pass,
)
from repro.core.problem import IVCInstance

grids_2d = st.tuples(st.integers(1, 6), st.integers(1, 6))
grids_3d = st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 3))
grids = st.one_of(grids_2d, grids_3d)
seeds = st.integers(0, 100_000)


def _instance(shape, seed):
    # Weights from 0: zero-weight vertices are always present eventually.
    rng = np.random.default_rng(seed)
    weights = rng.integers(0, 12, size=shape)
    if len(shape) == 2:
        return IVCInstance.from_grid_2d(weights)
    return IVCInstance.from_grid_3d(weights)


@given(shape=grids, seed=seeds, order_seed=seeds)
@settings(max_examples=40, deadline=None)
def test_greedy_kernel_matches_reference_for_random_orders(shape, seed, order_seed):
    inst = _instance(shape, seed)
    order = np.random.default_rng(order_seed).permutation(inst.num_vertices)
    order = order.astype(np.int64)
    ref = greedy_color(inst, order, fast=False)
    fast = greedy_color(inst, order, fast=True)
    assert np.array_equal(ref.starts, fast.starts)


@given(shape=grids, seed=seeds, order_seed=seeds)
@settings(max_examples=25, deadline=None)
def test_recolor_kernel_matches_reference(shape, seed, order_seed):
    inst = _instance(shape, seed)
    rng = np.random.default_rng(order_seed)
    base = greedy_color(
        inst, rng.permutation(inst.num_vertices).astype(np.int64), fast=False
    ).starts
    order = rng.permutation(inst.num_vertices).astype(np.int64)
    assert np.array_equal(
        greedy_recolor_pass(inst, base, order, fast=False),
        greedy_recolor_pass(inst, base, order, fast=True),
    )


@given(shape=grids, seed=seeds)
@settings(max_examples=15, deadline=None)
def test_registry_fast_paths_identical_for_every_algorithm(shape, seed):
    inst = _instance(shape, seed)
    for name in ALGORITHMS:
        ref = color_with(inst, name, fast=False)
        fast = color_with(inst, name, fast=True)
        assert np.array_equal(ref.starts, fast.starts), name


def _naive_best_permutation_fill(instance, starts, block):
    """Pre-optimization SGK block fill: full snapshot rebuilt per permutation."""
    weights = instance.weights
    graph = instance.graph
    uncolored = [int(v) for v in block if starts[v] == UNCOLORED]
    if not uncolored:
        return
    best = None
    best_score = None
    for perm in permutations(uncolored):
        trial = starts.copy()
        for v in perm:
            ns, ne = [], []
            for u in graph.neighbors(v):
                u = int(u)
                s = int(trial[u])
                if s != UNCOLORED and weights[u] > 0:
                    ns.append(s)
                    ne.append(s + int(weights[u]))
            trial[v] = first_fit_start(ns, ne, int(weights[v]))
        top = int((trial[block] + weights[block]).max())
        if best_score is None or top < best_score:
            best_score = top
            best = trial
    starts[:] = best


@given(shape=st.tuples(st.integers(2, 5), st.integers(2, 5)), seed=seeds)
@settings(max_examples=15, deadline=None)
def test_best_permutation_fill_matches_naive_reference(shape, seed):
    inst = _instance(shape, seed)
    starts_opt = np.full(inst.num_vertices, UNCOLORED, dtype=np.int64)
    starts_naive = starts_opt.copy()
    for block in _sorted_blocks(inst):
        _best_permutation_fill(inst, starts_opt, block)
        _naive_best_permutation_fill(inst, starts_naive, block)
        assert np.array_equal(starts_opt, starts_naive)
