"""Property-based tests (hypothesis) for the first-fit engine and intervals."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy_engine import first_fit_start, first_fit_start_naive
from repro.core.interval import intervals_overlap

interval_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(1, 8)), min_size=0, max_size=10
)


@given(intervals=interval_lists, w=st.integers(0, 10))
def test_first_fit_is_feasible(intervals, w):
    starts = [a for a, _ in intervals]
    ends = [a + b for a, b in intervals]
    s = first_fit_start(starts, ends, w)
    assert s >= 0
    if w > 0:
        for a, b in zip(starts, ends):
            assert not intervals_overlap(s, w, a, b - a)


@given(intervals=interval_lists, w=st.integers(1, 10))
def test_first_fit_is_minimal(intervals, w):
    starts = [a for a, _ in intervals]
    ends = [a + b for a, b in intervals]
    s = first_fit_start(starts, ends, w)
    for candidate in range(s):
        conflict = any(
            intervals_overlap(candidate, w, a, b - a) for a, b in zip(starts, ends)
        )
        assert conflict, f"{candidate} < {s} would also fit"


@given(intervals=interval_lists, w=st.integers(0, 10))
def test_naive_engine_agrees(intervals, w):
    starts = [a for a, _ in intervals]
    ends = [a + b for a, b in intervals]
    assert first_fit_start(starts, ends, w) == first_fit_start_naive(starts, ends, w)


@given(
    sa=st.integers(0, 20),
    wa=st.integers(0, 10),
    sb=st.integers(0, 20),
    wb=st.integers(0, 10),
)
def test_overlap_symmetric_and_consistent(sa, wa, sb, wb):
    assert intervals_overlap(sa, wa, sb, wb) == intervals_overlap(sb, wb, sa, wa)
    # Set semantics: overlap iff the integer sets intersect.
    set_a = set(range(sa, sa + wa))
    set_b = set(range(sb, sb + wb))
    assert intervals_overlap(sa, wa, sb, wb) == bool(set_a & set_b)


@given(
    shape=st.tuples(st.integers(2, 5), st.integers(2, 5)),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_greedy_valid_on_random_grids(shape, seed):
    from repro.core.greedy_engine import greedy_color
    from repro.core.problem import IVCInstance

    rng = np.random.default_rng(seed)
    inst = IVCInstance.from_grid_2d(rng.integers(0, 9, size=shape))
    order = rng.permutation(inst.num_vertices)
    coloring = greedy_color(inst, order)
    assert coloring.is_valid()


@given(
    shape=st.tuples(st.integers(2, 5), st.integers(2, 5)),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_recolor_pass_monotone(shape, seed):
    from repro.core.greedy_engine import greedy_color, greedy_recolor_pass
    from repro.core.coloring import Coloring
    from repro.core.problem import IVCInstance

    rng = np.random.default_rng(seed)
    inst = IVCInstance.from_grid_2d(rng.integers(0, 9, size=shape))
    base = greedy_color(inst, rng.permutation(inst.num_vertices))
    out = greedy_recolor_pass(inst, base.starts, rng.permutation(inst.num_vertices))
    assert np.all(out <= base.starts)
    assert Coloring(instance=inst, starts=out).is_valid()
