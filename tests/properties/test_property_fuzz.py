"""Failure-injection and fuzz tests: malformed inputs must be rejected
loudly, and validators must catch corrupted state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.stencil.generic import CSRGraph, from_edges


class TestCorruptedCSR:
    def test_dangling_indptr(self):
        g = CSRGraph(indptr=np.array([0, 2, 3]), indices=np.array([1, 0]))
        with pytest.raises(ValueError):
            g.validate()

    def test_out_of_range_neighbor(self):
        g = CSRGraph(indptr=np.array([0, 1, 2]), indices=np.array([5, 0]))
        with pytest.raises(ValueError, match="out of range"):
            g.validate()

    def test_negative_neighbor(self):
        g = CSRGraph(indptr=np.array([0, 1, 2]), indices=np.array([-1, 0]))
        with pytest.raises(ValueError, match="out of range"):
            g.validate()

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=15,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_from_edges_always_validates(self, edges):
        from_edges(8, edges).validate()


class TestCorruptedColorings:
    @given(
        seed=st.integers(0, 500),
        corrupt_at=st.integers(0, 15),
        new_start=st.integers(0, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_validator_catches_injected_overlaps(self, seed, corrupt_at, new_start):
        """Moving one vertex to an arbitrary start either stays valid or the
        validator flags an edge incident to exactly that vertex."""
        from repro.core.greedy_engine import greedy_color

        rng = np.random.default_rng(seed)
        inst = IVCInstance.from_grid_2d(rng.integers(1, 8, size=(4, 4)))
        good = greedy_color(inst, rng.permutation(16))
        starts = good.starts.copy()
        starts[corrupt_at] = new_start
        mutated = Coloring(instance=inst, starts=starts)
        violations = mutated.violations()
        if len(violations):
            assert np.any(violations == corrupt_at)
        else:
            mutated.check()

    def test_weights_float_inputs_coerced_or_rejected(self):
        # Integral floats coerce silently; that's numpy casting semantics.
        inst = IVCInstance.from_grid_2d(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert inst.weights.dtype == np.int64

    def test_nan_weights_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            IVCInstance.from_grid_2d(np.array([[np.nan, 1.0], [1.0, 1.0]]))

    def test_huge_weights_no_overflow(self):
        big = 2**40
        inst = IVCInstance.from_grid_2d([[big, big], [big, big]])
        from repro.core.algorithms.registry import color_with

        coloring = color_with(inst, "GLF")
        assert coloring.maxcolor == 4 * big  # exact in int64


class TestAlgorithmInputGuards:
    def test_all_algorithms_reject_generic_graph_where_documented(self):
        from repro.core.algorithms.registry import ALGORITHMS
        from repro.stencil.generic import cycle_graph

        inst = IVCInstance.from_graph(cycle_graph(5), [1] * 5)
        for name in ("GZO", "GKF", "SGK", "BD", "BDP"):
            with pytest.raises(ValueError):
                ALGORITHMS[name](inst)

    def test_order_with_duplicates_rejected(self, small_2d):
        from repro.core.greedy_engine import greedy_color

        order = np.zeros(small_2d.num_vertices, dtype=np.int64)
        with pytest.raises(ValueError, match="permutation"):
            greedy_color(small_2d, order)

    def test_milp_rejects_negative_k(self, small_2d):
        from repro.core.exact.milp import milp_decide

        with pytest.raises(ValueError):
            milp_decide(small_2d, -1)
