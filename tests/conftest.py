"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import IVCInstance


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for randomized tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_2d(rng) -> IVCInstance:
    """A 6x5 2DS-IVC instance with weights 0..9."""
    return IVCInstance.from_grid_2d(rng.integers(0, 10, size=(6, 5)), name="small-2d")


@pytest.fixture
def small_3d(rng) -> IVCInstance:
    """A 4x4x3 3DS-IVC instance with weights 0..7."""
    return IVCInstance.from_grid_3d(rng.integers(0, 8, size=(4, 4, 3)), name="small-3d")


def random_2d_instances(count: int = 8, seed: int = 0, max_dim: int = 7, max_w: int = 12):
    """A deterministic batch of random 2D instances (module-level helper)."""
    rng = np.random.default_rng(seed)
    out = []
    for k in range(count):
        shape = (int(rng.integers(2, max_dim)), int(rng.integers(2, max_dim)))
        grid = rng.integers(0, max_w, size=shape)
        out.append(IVCInstance.from_grid_2d(grid, name=f"rand2d-{k}"))
    return out


def random_3d_instances(count: int = 6, seed: int = 1, max_dim: int = 5, max_w: int = 9):
    """A deterministic batch of random 3D instances (module-level helper)."""
    rng = np.random.default_rng(seed)
    out = []
    for k in range(count):
        shape = tuple(int(rng.integers(2, max_dim)) for _ in range(3))
        grid = rng.integers(0, max_w, size=shape)
        out.append(IVCInstance.from_grid_3d(grid, name=f"rand3d-{k}"))
    return out
