"""Tests for NAE-3SAT instances and the brute-force solver."""

import pytest

from repro.npc.nae3sat import (
    NAE3SAT,
    all_clause_sets,
    random_nae3sat,
    unsatisfiable_example,
)


class TestConstruction:
    def test_clauses_normalized_sorted(self):
        f = NAE3SAT(4, ((2, 0, 3),))
        assert f.clauses == ((0, 2, 3),)

    def test_duplicate_variable_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            NAE3SAT(3, ((0, 0, 1),))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            NAE3SAT(3, ((0, 1, 3),))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            NAE3SAT(4, ((0, 1),))

    def test_needs_variables(self):
        with pytest.raises(ValueError):
            NAE3SAT(0, ())


class TestSemantics:
    def test_clause_satisfaction(self):
        f = NAE3SAT(3, ((0, 1, 2),))
        assert f.is_satisfied([True, False, True])
        assert not f.is_satisfied([True, True, True])
        assert not f.is_satisfied([False, False, False])

    def test_assignment_length_checked(self):
        f = NAE3SAT(3, ((0, 1, 2),))
        with pytest.raises(ValueError):
            f.is_satisfied([True, False])

    def test_complement_symmetry(self):
        f = random_nae3sat(5, 4, seed=3)
        a = f.solve_brute_force()
        assert a is not None
        complement = tuple(not x for x in a)
        assert f.is_satisfied(complement)


class TestBruteForce:
    def test_satisfiable(self):
        f = NAE3SAT(3, ((0, 1, 2),))
        a = f.solve_brute_force()
        assert a is not None and f.is_satisfied(a)

    def test_fano_unsatisfiable(self):
        f = unsatisfiable_example()
        assert f.num_vars == 7 and f.num_clauses == 7
        assert f.solve_brute_force() is None
        assert not f.is_satisfiable()

    def test_fano_minus_any_clause_satisfiable(self):
        fano = unsatisfiable_example()
        for drop in range(7):
            clauses = tuple(c for i, c in enumerate(fano.clauses) if i != drop)
            assert NAE3SAT(7, clauses).is_satisfiable()

    def test_too_many_vars_guarded(self):
        f = NAE3SAT(25, ((0, 1, 2),))
        with pytest.raises(ValueError, match="brute force"):
            f.solve_brute_force()

    def test_count_solutions_even(self):
        f = random_nae3sat(4, 2, seed=1)
        assert f.count_solutions() % 2 == 0

    def test_count_matches_enumeration(self):
        f = NAE3SAT(3, ((0, 1, 2),))
        assert f.count_solutions() == 6  # 8 assignments minus TTT and FFF


class TestGenerators:
    def test_random_deterministic(self):
        assert random_nae3sat(5, 3, seed=7) == random_nae3sat(5, 3, seed=7)
        assert random_nae3sat(5, 3, seed=7) != random_nae3sat(5, 3, seed=8)

    def test_random_needs_three_vars(self):
        with pytest.raises(ValueError):
            random_nae3sat(2, 1)

    def test_all_clause_sets_count(self):
        # C(C(4,3), 2) = C(4, 2) = 6 formulas with 2 distinct clauses on 4 vars.
        formulas = list(all_clause_sets(4, 2))
        assert len(formulas) == 6
        assert all(f.num_clauses == 2 for f in formulas)
