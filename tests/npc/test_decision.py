"""Tests for the decision oracles."""

import pytest

from repro.core.problem import IVCInstance
from repro.npc.decision import decide_stencil_coloring
from repro.stencil.generic import clique_graph


@pytest.fixture
def k3():
    return IVCInstance.from_graph(clique_graph(3), [3, 3, 3])


class TestMethods:
    def test_csp_and_milp_agree(self, k3):
        for k in (8, 9, 10):
            a = decide_stencil_coloring(k3, k, method="csp")
            b = decide_stencil_coloring(k3, k, method="milp")
            assert (a is None) == (b is None)

    def test_auto_falls_back_to_milp(self, k3):
        # A budget of 1 node forces the CSP to give up; auto must still answer.
        result = decide_stencil_coloring(k3, 9, method="auto", csp_node_budget=1)
        assert result is not None and result.maxcolor <= 9

    def test_unknown_method(self, k3):
        with pytest.raises(ValueError, match="method"):
            decide_stencil_coloring(k3, 9, method="quantum")

    def test_returned_colorings_valid(self, k3):
        for method in ("csp", "milp", "auto"):
            c = decide_stencil_coloring(k3, 12, method=method)
            assert c is not None and c.is_valid()

    def test_on_stencil_instance(self, small_2d):
        from repro.core.exact.branch_and_bound import solve_exact

        opt = solve_exact(small_2d).maxcolor
        assert decide_stencil_coloring(small_2d, opt, method="auto") is not None
        assert decide_stencil_coloring(small_2d, opt - 1, method="milp") is None
