"""Tests for the NAE-3SAT -> 3DS-IVC reduction (Section IV)."""

import numpy as np
import pytest

from repro.npc.nae3sat import NAE3SAT, all_clause_sets, random_nae3sat
from repro.npc.reduction import (
    K_REDUCTION,
    Reduction,
    assignment_from_coloring,
    build_reduction,
    coloring_from_assignment,
)


@pytest.fixture(scope="module")
def simple_reduction() -> Reduction:
    return build_reduction(NAE3SAT(3, ((0, 1, 2),)))


class TestConstruction:
    def test_grid_dimensions(self, simple_reduction):
        n, m = 3, 1
        assert simple_reduction.instance.geometry.shape == (2 * n + 10, 9, 2 * m)

    def test_weights_restricted(self, simple_reduction):
        values = set(np.unique(simple_reduction.instance.weights).tolist())
        assert values <= {0, 3, 7}

    def test_threshold_is_14(self, simple_reduction):
        assert simple_reduction.k == K_REDUCTION == 14

    def test_three_threes_per_clause(self):
        f = NAE3SAT(4, ((0, 1, 2), (1, 2, 3)))
        red = build_reduction(f)
        assert int((red.instance.weights == 3).sum()) == 3 * f.num_clauses

    def test_tube_structure(self, simple_reduction):
        # Every variable has one 7 per layer, alternating y=2 (odd z) / y=1.
        red = simple_reduction
        grid = red.instance.weight_grid()
        for var in range(red.formula.num_vars):
            p = 2 * var + 1
            for z in range(1, 2 * red.formula.num_clauses + 1):
                y = 2 if z % 2 == 1 else 1
                assert grid[p - 1, y - 1, z - 1] == 7

    def test_wires_have_even_length(self):
        # Chain parity at each terminal must equal the tube-base parity:
        # the terminal's recorded parity must be 0 (even distance).
        for seed in range(3):
            f = random_nae3sat(4, 2, seed=seed)
            red = build_reduction(f)
            for terminals, _threes in red.clause_gadgets:
                for t in terminals:
                    _var, parity = red.seven_cells[t]
                    assert parity == 0

    def test_seven_subgraph_is_bipartite_by_parity(self):
        # Adjacent 7s must have opposite recorded parity (per variable) —
        # otherwise the polarity argument breaks.
        f = NAE3SAT(4, ((0, 1, 3), (0, 2, 3)))
        red = build_reduction(f)
        geo = red.instance.geometry
        cells = list(red.seven_cells)
        flat = {red.flat_id(c): c for c in cells}
        for c in cells:
            v = red.flat_id(c)
            var, parity = red.seven_cells[c]
            for u in red.instance.graph.neighbors(v):
                u = int(u)
                if u in flat:
                    uvar, uparity = red.seven_cells[flat[u]]
                    if uvar == var:
                        assert uparity != parity, (c, flat[u])

    def test_different_variables_never_adjacent_7s(self):
        # 7-chains of different variables must not touch (polarity coupling).
        f = NAE3SAT(4, ((0, 1, 2), (1, 2, 3)))
        red = build_reduction(f)
        flat = {red.flat_id(c): c for c in red.seven_cells}
        for v, c in flat.items():
            var, _ = red.seven_cells[c]
            for u in red.instance.graph.neighbors(v):
                u = int(u)
                if u in flat:
                    assert red.seven_cells[flat[u]][0] == var

    def test_each_three_touches_exactly_one_terminal(self):
        f = NAE3SAT(4, ((0, 2, 3),))
        red = build_reduction(f)
        flat_sevens = {red.flat_id(c) for c in red.seven_cells}
        for terminals, threes in red.clause_gadgets:
            term_ids = [red.flat_id(t) for t in terminals]
            for q, three in enumerate(threes):
                tid = red.flat_id(three)
                seven_nbs = [
                    int(u)
                    for u in red.instance.graph.neighbors(tid)
                    if int(u) in flat_sevens
                ]
                assert seven_nbs == [term_ids[q]]

    def test_threes_mutually_adjacent(self, simple_reduction):
        red = simple_reduction
        for _terminals, threes in red.clause_gadgets:
            ids = [red.flat_id(t) for t in threes]
            for a in ids:
                for b in ids:
                    if a != b:
                        assert red.instance.graph.has_edge(a, b)

    def test_needs_a_clause(self):
        with pytest.raises(ValueError, match="at least one clause"):
            build_reduction(NAE3SAT(3, ()))


class TestWitness:
    def test_witness_valid_for_all_solutions(self):
        from itertools import product

        f = NAE3SAT(3, ((0, 1, 2),))
        red = build_reduction(f)
        for bits in product((False, True), repeat=3):
            if f.is_satisfied(bits):
                witness = coloring_from_assignment(red, bits)
                assert witness.maxcolor <= 14

    def test_witness_rejects_bad_assignment(self):
        f = NAE3SAT(3, ((0, 1, 2),))
        red = build_reduction(f)
        with pytest.raises(ValueError, match="does not satisfy"):
            coloring_from_assignment(red, (True, True, True))

    def test_roundtrip(self):
        for seed in range(4):
            f = random_nae3sat(5, 3, seed=seed)
            a = f.solve_brute_force()
            if a is None:
                continue
            red = build_reduction(f)
            witness = coloring_from_assignment(red, a)
            back = assignment_from_coloring(red, witness)
            assert back == a

    def test_extraction_rejects_overbudget_coloring(self):
        from repro.core.coloring import Coloring

        f = NAE3SAT(3, ((0, 1, 2),))
        red = build_reduction(f)
        starts = np.zeros(red.instance.num_vertices, dtype=np.int64)
        starts[red.flat_id(red.var_base[0])] = 100
        bad = Coloring(instance=red.instance, starts=starts)
        with pytest.raises(ValueError, match="colors"):
            assignment_from_coloring(red, bad)


@pytest.mark.slow
class TestEquivalence:
    """The heart of Section IV: satisfiable <=> 14-colorable."""

    def test_exhaustive_small_formulas(self):
        from repro.npc.decision import decide_stencil_coloring

        for f in all_clause_sets(4, 2):
            red = build_reduction(f)
            colorable = decide_stencil_coloring(red.instance, 14, method="milp")
            assert (colorable is not None) == f.is_satisfiable(), f.clauses
            if colorable is not None:
                extracted = assignment_from_coloring(red, colorable)
                assert f.is_satisfied(extracted)

    def test_fano_not_colorable(self):
        from repro.npc.decision import decide_stencil_coloring
        from repro.npc.nae3sat import unsatisfiable_example

        red = build_reduction(unsatisfiable_example())
        assert decide_stencil_coloring(red.instance, 14, method="milp") is None

    def test_thirteen_colors_never_enough(self):
        # Even satisfiable instances need the full 14 (7s stack to 14).
        from repro.npc.decision import decide_stencil_coloring

        f = NAE3SAT(3, ((0, 1, 2),))
        red = build_reduction(f)
        assert decide_stencil_coloring(red.instance, 13, method="milp") is None
