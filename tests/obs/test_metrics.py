"""The hoisted metrics layer, exercised outside the service.

Covers what the service tests cannot: snapshot-state merging across
registries (the engine's cross-process path), thread-safety under
contention, substrate-cache counters landing in a context-local registry,
and worker snapshots surfacing on ``GridResult.metrics`` with ``jobs=2``.
"""

import threading

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, merge_snapshots


class TestServiceShim:
    def test_service_metrics_reexports_obs(self):
        from repro.service import metrics as shim

        assert shim.MetricsRegistry is MetricsRegistry
        assert shim.Counter is Counter
        assert shim.Histogram is Histogram
        assert shim.merge_snapshots is merge_snapshots


class TestHistogramState:
    def test_state_carries_buckets_and_bounds(self):
        h = Histogram()
        for v in (0.001, 0.01, 0.1):
            h.observe(v)
        state = h.state()
        assert state["count"] == 3
        assert sum(state["buckets"]) == 3
        assert len(state["buckets"]) == len(state["bounds"]) + 1

    def test_merge_state_sums_buckets_and_extremes(self):
        a, b = Histogram(), Histogram()
        for v in (0.001, 0.002):
            a.observe(v)
        for v in (0.5, 1.5):
            b.observe(v)
        a.merge_state(b.state())
        assert a.count == 4
        assert a.min == 0.001
        assert a.max == 1.5
        assert a.mean == pytest.approx((0.001 + 0.002 + 0.5 + 1.5) / 4)
        # percentiles come from the summed buckets, clamped to the true max
        assert a.percentile(99) <= 1.5

    def test_merge_rejects_incompatible_buckets(self):
        a = Histogram()
        with pytest.raises(ValueError, match="incompatible"):
            a.merge_state({"buckets": [1, 2, 3], "count": 3})

    def test_merging_empty_state_changes_nothing(self):
        a = Histogram()
        a.observe(0.25)
        empty = Histogram()
        a.merge_state(empty.state())
        assert a.count == 1
        assert a.min == 0.25


class TestMergeSnapshots:
    def _registry(self, ok, depth, latencies):
        reg = MetricsRegistry()
        reg.counter("cells_ok").inc(ok)
        reg.gauge("queue_depth").set(depth)
        for v in latencies:
            reg.histogram("cell_seconds").observe(v)
        return reg

    def test_counters_add_gauges_max_histograms_merge(self):
        snaps = [
            self._registry(3, 5.0, [0.01, 0.02]).snapshot(include_state=True),
            self._registry(4, 2.0, [0.03]).snapshot(include_state=True),
        ]
        merged = merge_snapshots(snaps)
        assert merged["counters"]["cells_ok"] == 7
        assert merged["gauges"]["queue_depth"] == 5.0
        hist = merged["histograms"]["cell_seconds"]
        assert hist["count"] == 3
        assert hist["min"] == pytest.approx(0.01)
        assert hist["max"] == pytest.approx(0.03)

    def test_empty_iterable_yields_empty_snapshot(self):
        merged = merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_summary_only_snapshot_raises(self):
        reg = self._registry(1, 0.0, [0.01])
        with pytest.raises(ValueError):
            merge_snapshots([reg.snapshot()])  # include_state=False

    def test_merge_is_order_insensitive_for_counters_and_buckets(self):
        a = self._registry(2, 1.0, [0.001, 1.0]).snapshot(include_state=True)
        b = self._registry(5, 3.0, [0.1]).snapshot(include_state=True)
        ab, ba = merge_snapshots([a, b]), merge_snapshots([b, a])
        assert ab["counters"] == ba["counters"]
        assert ab["histograms"]["cell_seconds"] == ba["histograms"]["cell_seconds"]


class TestThreadSafety:
    def test_contended_counter_and_histogram(self):
        reg = MetricsRegistry()
        threads = []

        def work():
            c = reg.counter("hits")
            h = reg.histogram("lat")
            for _ in range(1000):
                c.inc()
                h.observe(0.001)

        for _ in range(8):
            threads.append(threading.Thread(target=work))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == 8000
        assert reg.histogram("lat").count == 8000

    def test_concurrent_named_access_yields_one_instance(self):
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            seen.append(reg.counter("shared"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestSubstrateCounters:
    """Kernel substrate-cache events land in the owning context's registry."""

    def test_geometry_cache_hit_miss_counters(self):
        from repro.kernels.substrate import shared_geometry_2d
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext()
        shared_geometry_2d(6, 7, context=ctx)   # miss: builds
        shared_geometry_2d(6, 7, context=ctx)   # hit
        shared_geometry_2d(8, 8, context=ctx)   # miss
        counters = ctx.metrics.snapshot()["counters"]
        assert counters["substrate.geometries.misses"] == 2
        assert counters["substrate.geometries.hits"] == 1

    def test_contexts_do_not_share_counters(self):
        from repro.kernels.substrate import shared_geometry_2d
        from repro.runtime.context import ExecutionContext

        a, b = ExecutionContext(), ExecutionContext()
        shared_geometry_2d(5, 5, context=a)
        counters_b = b.metrics.snapshot()["counters"]
        assert "substrate.geometries.misses" not in counters_b

    def test_kernel_coloring_emits_into_context_registry(self):
        from repro.core.algorithms.registry import color_with
        from repro.core.problem import IVCInstance
        from repro.runtime.context import ExecutionContext

        weights = np.random.default_rng(0).integers(1, 50, (8, 9), dtype=np.int64)
        instance = IVCInstance.from_grid_2d(weights)
        ctx = ExecutionContext()
        color_with(instance, "GLL", fast=True, context=ctx)
        snap = ctx.metrics.snapshot()
        assert snap["counters"]["registry.dispatch"] == 1
        assert snap["counters"]["registry.dispatch_fast"] == 1
        assert any(k.startswith("substrate.") for k in snap["counters"])
        assert snap["histograms"]["registry.color_seconds"]["count"] == 1


class TestEngineWorkerMerge:
    """Worker registries surface, merged, on GridResult.metrics."""

    def _instances(self):
        from repro.core.problem import IVCInstance

        rng = np.random.default_rng(1)
        return [
            IVCInstance.from_grid_2d(
                rng.integers(1, 50, (6, 6 + i), dtype=np.int64)
            )
            for i in range(3)
        ]

    def test_serial_run_collects_metrics(self):
        from repro.engine import run_grid
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext()
        records = run_grid(self._instances(), ["GLL", "BD"], jobs=1, context=ctx)
        assert records.metrics is not None
        assert records.metrics["counters"]["engine.cells_ok"] == 6
        assert records.metrics["histograms"]["engine.cell_seconds"]["count"] == 6

    def test_parallel_workers_merge_to_grid_total(self):
        from repro.engine import run_grid
        from repro.runtime.context import ExecutionContext

        instances = self._instances()
        records = run_grid(
            instances, ["GLL", "BD"], jobs=2, context=ExecutionContext()
        )
        assert records.metrics is not None
        counters = records.metrics["counters"]
        # every cell ran in exactly one worker; the merged snapshot must
        # account for the full grid regardless of how chunks were split
        assert counters["engine.cells_ok"] == len(instances) * 2
        assert counters["registry.dispatch"] == len(instances) * 2
        hist = records.metrics["histograms"]["engine.cell_seconds"]
        assert hist["count"] == len(instances) * 2
        assert hist["max"] >= hist["min"] >= 0.0
