"""Unit tests for the dirty-region recolor engine (:mod:`repro.incremental`)."""

import numpy as np
import pytest

from repro.incremental.engine import (
    SUPPORTED_ALGORITHMS,
    RecolorValidationError,
    full_recolor,
    recolor_grid,
)
from repro.runtime.config import IncrementalConfig, RuntimeConfig
from repro.runtime.context import ExecutionContext


def _grid(shape, seed=0, high=20):
    rng = np.random.default_rng(seed)
    return rng.integers(1, high, size=shape).astype(np.int64)


def _delta(weights, idx, seed=1, high=20):
    rng = np.random.default_rng(seed)
    out = weights.copy()
    out.ravel()[np.asarray(idx)] = rng.integers(1, high, size=len(idx))
    return out


class TestRecolorGrid:
    def test_supported_algorithm_set(self):
        assert SUPPORTED_ALGORITHMS == frozenset({"GLL", "GZO", "GLF"})

    @pytest.mark.parametrize("algorithm", sorted(SUPPORTED_ALGORITHMS))
    def test_single_cell_delta_bit_identical_2d(self, algorithm):
        weights = _grid((24, 24))
        new_weights = _delta(weights, [100])
        base = full_recolor(weights, algorithm)
        outcome = recolor_grid(new_weights, base, [100], algorithm=algorithm)
        assert np.array_equal(outcome.starts, full_recolor(new_weights, algorithm))
        assert outcome.algorithm == algorithm
        assert outcome.cells_dirty == 1

    @pytest.mark.parametrize("algorithm", sorted(SUPPORTED_ALGORITHMS))
    def test_single_cell_delta_bit_identical_3d(self, algorithm):
        weights = _grid((8, 8, 8))
        new_weights = _delta(weights, [77])
        base = full_recolor(weights, algorithm)
        outcome = recolor_grid(new_weights, base, [77], algorithm=algorithm)
        assert np.array_equal(outcome.starts, full_recolor(new_weights, algorithm))
        assert outcome.starts.shape == (8, 8, 8)

    def test_empty_delta_is_a_no_op_even_for_unsupported(self):
        weights = _grid((6, 6))
        base = full_recolor(weights, "BD")
        outcome = recolor_grid(weights, base, [], algorithm="BD")
        assert outcome.mode == "incremental"
        assert outcome.cells_changed == 0
        assert outcome.fallback_reason is None
        assert np.array_equal(outcome.starts, base)

    def test_unsupported_algorithm_falls_back(self):
        weights = _grid((10, 10))
        new_weights = _delta(weights, [5])
        base = full_recolor(weights, "BD")
        outcome = recolor_grid(new_weights, base, [5], algorithm="BD")
        assert outcome.mode == "fallback"
        assert outcome.fallback_reason == "unsupported-algorithm"
        assert np.array_equal(outcome.starts, full_recolor(new_weights, "BD"))

    def test_tiny_budget_falls_back_with_cone_budget_reason(self):
        weights = _grid((16, 16))
        dirty = np.arange(weights.size)
        new_weights = _delta(weights, dirty)
        base = full_recolor(weights, "GLL")
        outcome = recolor_grid(
            new_weights, base, dirty, algorithm="GLL", max_cone_fraction=0.01
        )
        assert outcome.mode == "fallback"
        assert outcome.fallback_reason == "cone-budget"
        assert np.array_equal(outcome.starts, full_recolor(new_weights, "GLL"))

    def test_maxcolor_matches_starts_plus_weights(self):
        weights = _grid((12, 12))
        new_weights = _delta(weights, [3, 17, 60])
        base = full_recolor(weights, "GLF")
        outcome = recolor_grid(new_weights, base, [3, 17, 60], algorithm="GLF")
        assert outcome.maxcolor == int((outcome.starts + new_weights).max())

    def test_stats_is_json_ready_provenance(self):
        weights = _grid((8, 8))
        new_weights = _delta(weights, [9])
        base = full_recolor(weights, "GLL")
        stats = recolor_grid(new_weights, base, [9], algorithm="GLL").stats()
        assert set(stats) == {
            "mode", "algorithm", "cells_dirty", "cells_recomputed",
            "cells_changed", "levels_touched", "spliced", "fallback_reason",
            "elapsed",
        }
        assert stats["mode"] == "incremental"
        assert stats["cells_dirty"] == 1
        import json

        json.dumps(stats)  # must not raise

    def test_validate_passes_on_correct_incremental(self):
        weights = _grid((10, 10))
        new_weights = _delta(weights, [42])
        base = full_recolor(weights, "GLL")
        # Open budget: GLL cascades can legitimately exceed the default
        # cone fraction on a grid this small, and this test is about the
        # validate path, not the fallback policy.
        outcome = recolor_grid(
            new_weights, base, [42], algorithm="GLL",
            validate=True, max_cone_fraction=1.0,
        )
        assert outcome.mode == "incremental"

    def test_validate_raises_on_corrupt_base(self):
        # An empty delta echoes the base coloring back, so a corrupt base
        # with validate=True must trip the divergence check.
        weights = _grid((6, 6))
        corrupt = np.zeros_like(weights)
        with pytest.raises(RecolorValidationError):
            recolor_grid(weights, corrupt, [], algorithm="GLL", validate=True)

    def test_dirty_out_of_range_rejected(self):
        weights = _grid((4, 4))
        base = full_recolor(weights, "GLL")
        with pytest.raises(ValueError, match="out of range"):
            recolor_grid(weights, base, [16], algorithm="GLL")
        with pytest.raises(ValueError, match="out of range"):
            recolor_grid(weights, base, [-1], algorithm="GLL")

    def test_shape_mismatch_rejected(self):
        weights = _grid((4, 4))
        with pytest.raises(ValueError, match="shape"):
            recolor_grid(weights, np.zeros((5, 5), dtype=np.int64), [0])

    def test_bad_cone_fraction_rejected(self):
        weights = _grid((4, 4))
        base = full_recolor(weights, "GLL")
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="max_cone_fraction"):
                recolor_grid(weights, base, [0], max_cone_fraction=bad)

    def test_extra_clean_dirty_indices_are_safe(self):
        # Claiming clean cells dirty may only widen the cone, never change
        # the answer.
        weights = _grid((16, 16))
        new_weights = _delta(weights, [30])
        base = full_recolor(weights, "GLL")
        wide = recolor_grid(
            new_weights, base, [30, 31, 32, 200], algorithm="GLL"
        )
        assert np.array_equal(wide.starts, full_recolor(new_weights, "GLL"))

    def test_metrics_counters_flow_to_context(self):
        ctx = ExecutionContext()
        weights = _grid((16, 16))
        new_weights = _delta(weights, [7])
        base = full_recolor(weights, "GLL", context=ctx)
        recolor_grid(new_weights, base, [7], algorithm="GLL", context=ctx)
        recolor_grid(new_weights, base, [7], algorithm="BD", context=ctx)
        snap = ctx.metrics.snapshot()
        counters = snap["counters"]
        assert counters["recolor_calls"] == 2
        assert counters["recolor_fallbacks"] == 1
        assert counters["recolor_cone_cells"] >= 1
        assert snap["histograms"]["recolor_splice_seconds"]["count"] == 2


class TestIncrementalConfig:
    def test_defaults(self):
        cfg = IncrementalConfig()
        assert cfg.max_cone_fraction == 0.25
        assert cfg.validate is False
        assert cfg.session_limit == 64
        assert cfg.session_ttl == 900.0

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCR_CONE_FRACTION", "0.5")
        monkeypatch.setenv("REPRO_INCR_VALIDATE", "1")
        monkeypatch.setenv("REPRO_INCR_SESSION_LIMIT", "8")
        monkeypatch.setenv("REPRO_INCR_SESSION_TTL", "12.5")
        cfg = IncrementalConfig.from_env()
        assert cfg == IncrementalConfig(
            max_cone_fraction=0.5, validate=True,
            session_limit=8, session_ttl=12.5,
        )

    def test_kwargs_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCR_SESSION_LIMIT", "8")
        assert IncrementalConfig.from_env(session_limit=3).session_limit == 3
        assert IncrementalConfig.from_env(session_limit=None).session_limit == 8

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError, match="unknown"):
            IncrementalConfig.from_env(bogus=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalConfig(max_cone_fraction=0.0)
        with pytest.raises(ValueError):
            IncrementalConfig(max_cone_fraction=1.5)
        with pytest.raises(ValueError):
            IncrementalConfig(session_limit=0)
        with pytest.raises(ValueError):
            IncrementalConfig(session_ttl=0.0)

    def test_with_overrides_skips_none(self):
        cfg = IncrementalConfig()
        assert cfg.with_overrides(validate=None) is cfg
        assert cfg.with_overrides(validate=True).validate is True

    def test_rides_on_runtime_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCR_CONE_FRACTION", "0.75")
        cfg = RuntimeConfig.from_env()
        assert cfg.incremental.max_cone_fraction == 0.75

    def test_runtime_config_normalizes_dict(self):
        cfg = RuntimeConfig(incremental={"max_cone_fraction": 0.5})
        assert isinstance(cfg.incremental, IncrementalConfig)
        assert cfg.incremental.max_cone_fraction == 0.5

    def test_engine_reads_context_config(self):
        ctx = ExecutionContext(
            RuntimeConfig(incremental=IncrementalConfig(max_cone_fraction=0.01))
        )
        weights = _grid((16, 16))
        dirty = np.arange(weights.size)
        new_weights = _delta(weights, dirty)
        base = full_recolor(weights, "GLL", context=ctx)
        outcome = recolor_grid(
            new_weights, base, dirty, algorithm="GLL", context=ctx
        )
        assert outcome.fallback_reason == "cone-budget"
