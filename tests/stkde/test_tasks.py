"""Tests for the box/task decomposition."""

import numpy as np
import pytest

from repro.data.events import PointDataset
from repro.data.synthetic import dengue_like
from repro.stkde.stkde import stkde_reference
from repro.stkde.tasks import STKDEProblem, box_decomposition


@pytest.fixture(scope="module")
def problem():
    ds = dengue_like(num_points=200)
    h_s = ds.axis_length(0) / 8.0
    h_t = ds.axis_length(2) / 8.0
    return box_decomposition(ds, h_s, h_t, voxel_dims=(10, 10, 10))


class TestDecomposition:
    def test_default_box_dims_maximal(self, problem):
        # Default box grid is the finest legal one per axis: h_space = Lx/8
        # gives 4 boxes on x but floor(25 / (2 * 3.75)) = 3 on the shorter y.
        assert problem.box_dims == (4, 3, 4)

    def test_bandwidth_rule_enforced(self):
        ds = dengue_like(num_points=50)
        with pytest.raises(ValueError, match="2x-bandwidth"):
            STKDEProblem(ds, (8, 8, 8), ds.axis_length(0) / 4, ds.axis_length(2) / 8, (4, 4, 4))

    def test_point_boxes_in_range(self, problem):
        boxes = problem.point_boxes
        assert boxes.min() >= 0
        assert boxes.max() < int(np.prod(problem.box_dims))

    def test_task_point_ids_partition(self, problem):
        all_ids = np.concatenate(problem.task_point_ids)
        assert sorted(all_ids.tolist()) == list(range(problem.dataset.num_points))

    def test_instance_weights_are_counts(self, problem):
        inst = problem.instance
        assert inst.is_3d
        assert inst.total_weight == problem.dataset.num_points
        for box, ids in enumerate(problem.task_point_ids):
            assert inst.weights[box] == len(ids)


class TestExecution:
    def test_execute_all_matches_reference(self, problem):
        density = problem.execute_all()
        reference = stkde_reference(
            problem.dataset, problem.voxel_dims, problem.h_space, problem.h_time
        )
        assert np.allclose(density, reference)

    def test_execution_order_invariant(self, problem):
        n = problem.instance.num_vertices
        forward = problem.execute_all(np.arange(n))
        backward = problem.execute_all(np.arange(n)[::-1])
        assert np.allclose(forward, backward)

    def test_execute_task_returns_weight(self, problem):
        density = np.zeros(problem.voxel_dims)
        for box in range(problem.instance.num_vertices):
            n = problem.execute_task(box, density)
            assert n == problem.instance.weights[box]

    def test_non_neighbor_tasks_write_disjoint_voxels(self, problem):
        """The race-freedom property behind the whole coloring approach."""
        n = problem.instance.num_vertices
        touched = []
        for box in range(n):
            d = np.zeros(problem.voxel_dims)
            problem.execute_task(box, d)
            touched.append(d != 0)
        csr = problem.instance.graph
        weights = problem.instance.weights
        for a in range(n):
            if weights[a] == 0:
                continue
            nbs = set(csr.neighbors(a).tolist())
            for b in range(a + 1, n):
                if weights[b] == 0 or b in nbs:
                    continue
                assert not np.any(touched[a] & touched[b]), (a, b)
