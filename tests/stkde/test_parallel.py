"""Tests for the real-thread execution path."""

import numpy as np
import pytest

from repro.core.algorithms.registry import color_with
from repro.core.coloring import Coloring
from repro.data.synthetic import dengue_like
from repro.stkde.parallel import execute_threaded
from repro.stkde.stkde import stkde_reference
from repro.stkde.tasks import box_decomposition


@pytest.fixture(scope="module")
def problem():
    ds = dengue_like(num_points=150)
    return box_decomposition(
        ds, ds.axis_length(0) / 8, ds.axis_length(2) / 8, voxel_dims=(8, 8, 8)
    )


@pytest.fixture(scope="module")
def reference(problem):
    return stkde_reference(
        problem.dataset, problem.voxel_dims, problem.h_space, problem.h_time
    )


class TestThreadedExecution:
    @pytest.mark.parametrize("algorithm", ["GLF", "BD", "GLL"])
    def test_density_matches_reference(self, problem, reference, algorithm):
        coloring = color_with(problem.instance, algorithm)
        result = execute_threaded(problem, coloring, num_workers=4)
        assert np.allclose(result.density, reference)
        assert result.num_tasks == problem.instance.num_vertices

    def test_single_worker(self, problem, reference):
        coloring = color_with(problem.instance, "GLF")
        result = execute_threaded(problem, coloring, num_workers=1)
        assert np.allclose(result.density, reference)

    def test_invalid_coloring_rejected(self, problem):
        starts = np.zeros(problem.instance.num_vertices, dtype=np.int64)
        bad = Coloring(instance=problem.instance, starts=starts)
        with pytest.raises(ValueError):
            execute_threaded(problem, bad, num_workers=2)

    def test_mismatched_coloring_rejected(self, problem):
        from repro.core.problem import IVCInstance

        other = IVCInstance.from_grid_3d(np.ones((2, 2, 2), dtype=int))
        coloring = color_with(other, "GLF")
        with pytest.raises(ValueError, match="does not match"):
            execute_threaded(problem, coloring, num_workers=2)

    def test_repeated_runs_identical(self, problem):
        coloring = color_with(problem.instance, "GLF")
        a = execute_threaded(problem, coloring, num_workers=4)
        b = execute_threaded(problem, coloring, num_workers=4)
        assert np.allclose(a.density, b.density)
