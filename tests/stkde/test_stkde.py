"""Tests for the sequential STKDE reference."""

import numpy as np
import pytest

from repro.data.events import PointDataset
from repro.stkde.kernel import space_time_kernel
from repro.stkde.stkde import stkde_reference, voxel_centers


@pytest.fixture
def unit_dataset():
    pts = np.array([[5.0, 5.0, 5.0]])
    extent = np.array([[0.0, 10.0]] * 3)
    return PointDataset("u", pts, extent)


class TestVoxelCenters:
    def test_centers(self):
        extent = np.array([[0.0, 10.0], [0.0, 4.0], [0.0, 2.0]])
        cx, cy, ct = voxel_centers(extent, (5, 2, 2))
        assert cx.tolist() == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert cy.tolist() == [1.0, 3.0]
        assert ct.tolist() == [0.5, 1.5]


class TestReference:
    def test_matches_brute_force(self, unit_dataset):
        dims = (6, 6, 6)
        h_s, h_t = 3.0, 3.0
        fast = stkde_reference(unit_dataset, dims, h_s, h_t)
        centers = voxel_centers(unit_dataset.extent, dims)
        slow = np.zeros(dims)
        px, py, pt = unit_dataset.points[0]
        for a, cx in enumerate(centers[0]):
            for b, cy in enumerate(centers[1]):
                for c, ct in enumerate(centers[2]):
                    d = np.hypot(cx - px, cy - py)
                    slow[a, b, c] = space_time_kernel(d, ct - pt, h_s, h_t)
        assert np.allclose(fast, slow)

    def test_far_voxels_zero(self, unit_dataset):
        density = stkde_reference(unit_dataset, (10, 10, 10), 1.0, 1.0)
        assert density[0, 0, 0] == 0.0
        assert density.max() > 0

    def test_additive_over_points(self):
        extent = np.array([[0.0, 10.0]] * 3)
        a = PointDataset("a", np.array([[2.0, 2.0, 2.0]]), extent)
        b = PointDataset("b", np.array([[8.0, 8.0, 8.0]]), extent)
        both = PointDataset(
            "ab", np.array([[2.0, 2.0, 2.0], [8.0, 8.0, 8.0]]), extent
        )
        da = stkde_reference(a, (8, 8, 8), 2.0, 2.0)
        db = stkde_reference(b, (8, 8, 8), 2.0, 2.0)
        dab = stkde_reference(both, (8, 8, 8), 2.0, 2.0)
        assert np.allclose(dab, da + db)

    def test_empty_dataset(self):
        ds = PointDataset("e", np.empty((0, 3)), np.array([[0.0, 1.0]] * 3))
        assert stkde_reference(ds, (4, 4, 4), 0.5, 0.5).sum() == 0

    def test_invalid_bandwidths(self, unit_dataset):
        with pytest.raises(ValueError):
            stkde_reference(unit_dataset, (4, 4, 4), 0.0, 1.0)

    def test_total_mass_approximates_count(self):
        # With fine voxels and interior points, sum(density)*voxel_volume ≈ N.
        rng = np.random.default_rng(0)
        pts = rng.uniform(3, 7, size=(20, 3))
        extent = np.array([[0.0, 10.0]] * 3)
        ds = PointDataset("m", pts, extent)
        dims = (40, 40, 40)
        density = stkde_reference(ds, dims, 1.5, 1.5)
        voxel_volume = (10 / 40) ** 3
        assert density.sum() * voxel_volume == pytest.approx(20, rel=0.05)
