"""Tests for the OpenMP-style runtime simulator."""

import numpy as np
import pytest

from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.stkde.runtime import (
    critical_path_length,
    default_costs,
    simulate_schedule,
    task_dag_from_coloring,
)


@pytest.fixture
def colored_instance(rng):
    inst = IVCInstance.from_grid_3d(rng.integers(0, 10, size=(4, 4, 3)))
    return color_with(inst, "GLF")


class TestTaskDAG:
    def test_zero_weight_boxes_excluded(self, rng):
        grid = rng.integers(0, 5, size=(4, 4))
        grid[0, :] = 0
        inst = IVCInstance.from_grid_2d(grid)
        coloring = color_with(inst, "GLL")
        dag = task_dag_from_coloring(coloring)
        active = int((inst.weights > 0).sum())
        assert dag.num_tasks == active
        zero_ids = np.flatnonzero(inst.weights == 0)
        assert np.all(dag.rank[zero_ids] == -1)
        assert all(len(dag.successors[int(v)]) == 0 for v in zero_ids)

    def test_edges_oriented_by_start(self, colored_instance):
        dag = task_dag_from_coloring(colored_instance)
        starts = colored_instance.starts
        for v in dag.creation_order:
            v = int(v)
            for u in dag.successors[v]:
                assert (starts[v], v) < (starts[int(u)], int(u))

    def test_acyclic_indegree_consistency(self, colored_instance):
        dag = task_dag_from_coloring(colored_instance)
        indeg = np.zeros(colored_instance.instance.num_vertices, dtype=int)
        for v in dag.creation_order:
            for u in dag.successors[int(v)]:
                indeg[int(u)] += 1
        assert np.array_equal(indeg[dag.creation_order], dag.indegree[dag.creation_order])

    def test_creation_order_sorted_by_start(self, colored_instance):
        dag = task_dag_from_coloring(colored_instance)
        starts = colored_instance.starts[dag.creation_order]
        assert np.all(np.diff(starts) >= 0)


class TestCriticalPath:
    def test_bounded_by_maxcolor_plus_overheads(self):
        # Along any DAG path intervals are disjoint increasing, so the
        # weighted critical path can't exceed maxcolor (+ per-task overhead).
        rng = np.random.default_rng(7)
        for name in ALGORITHMS:
            inst = IVCInstance.from_grid_2d(rng.integers(0, 12, size=(6, 6)))
            coloring = color_with(inst, name)
            dag = task_dag_from_coloring(coloring)
            overhead = 0.01
            costs = default_costs(inst, per_point=1.0, overhead=overhead)
            cp = critical_path_length(dag, costs)
            assert cp <= coloring.maxcolor + overhead * dag.num_tasks + 1e-9

    def test_tight_for_first_fit_colorings(self, rng):
        # For greedy first-fit colorings the bound is achieved up to overhead
        # (the vertex attaining maxcolor rests on a chain back to color 0).
        inst = IVCInstance.from_grid_2d(rng.integers(1, 10, size=(6, 6)))
        coloring = color_with(inst, "GLF")
        dag = task_dag_from_coloring(coloring)
        costs = inst.weights.astype(float)
        assert critical_path_length(dag, costs) == pytest.approx(coloring.maxcolor)

    def test_single_task(self):
        inst = IVCInstance.from_grid_2d([[5, 0], [0, 0]])
        coloring = Coloring(instance=inst, starts=np.zeros(4, dtype=np.int64))
        dag = task_dag_from_coloring(coloring)
        assert critical_path_length(dag, inst.weights.astype(float)) == 5


class TestSimulator:
    def test_single_worker_serializes(self, colored_instance):
        costs = default_costs(colored_instance.instance)
        trace = simulate_schedule(colored_instance, num_workers=1, costs=costs)
        active = colored_instance.instance.weights > 0
        assert trace.makespan == pytest.approx(costs[active].sum())

    def test_many_workers_reach_critical_path(self, colored_instance):
        costs = default_costs(colored_instance.instance)
        n = colored_instance.instance.num_vertices
        trace = simulate_schedule(colored_instance, num_workers=n, costs=costs)
        assert trace.makespan == pytest.approx(trace.critical_path)

    def test_makespan_lower_bounds(self, colored_instance):
        costs = default_costs(colored_instance.instance)
        for p in (2, 4):
            trace = simulate_schedule(colored_instance, num_workers=p, costs=costs)
            assert trace.makespan >= trace.critical_path - 1e-9
            assert trace.makespan >= trace.total_work / p - 1e-9
            # Graham bound for list scheduling.
            assert trace.makespan <= trace.total_work / p + trace.critical_path + 1e-9

    def test_more_workers_never_slower(self, colored_instance):
        costs = default_costs(colored_instance.instance)
        m2 = simulate_schedule(colored_instance, num_workers=2, costs=costs).makespan
        m8 = simulate_schedule(colored_instance, num_workers=8, costs=costs).makespan
        assert m8 <= m2 + 1e-9

    def test_schedule_respects_dependencies(self, colored_instance):
        trace = simulate_schedule(colored_instance, num_workers=3)
        dag = task_dag_from_coloring(colored_instance)
        for v in dag.creation_order:
            v = int(v)
            for u in dag.successors[v]:
                assert trace.start_times[int(u)] >= trace.finish_times[v] - 1e-9

    def test_deterministic(self, colored_instance):
        a = simulate_schedule(colored_instance, num_workers=3)
        b = simulate_schedule(colored_instance, num_workers=3)
        assert a.makespan == b.makespan

    def test_efficiency_in_unit_range(self, colored_instance):
        trace = simulate_schedule(colored_instance, num_workers=4)
        assert 0 < trace.parallel_efficiency <= 1.0 + 1e-9

    def test_needs_a_worker(self, colored_instance):
        with pytest.raises(ValueError):
            simulate_schedule(colored_instance, num_workers=0)

    def test_cost_length_checked(self, colored_instance):
        with pytest.raises(ValueError, match="costs"):
            simulate_schedule(colored_instance, num_workers=2, costs=np.ones(3))

    def test_empty_instance(self):
        inst = IVCInstance.from_grid_2d(np.zeros((2, 2), dtype=int))
        coloring = Coloring(instance=inst, starts=np.zeros(4, dtype=np.int64))
        trace = simulate_schedule(coloring, num_workers=2)
        assert trace.makespan == 0
