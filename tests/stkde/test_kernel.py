"""Tests for the space-time kernels."""

import numpy as np
import pytest

from repro.stkde.kernel import epanechnikov, epanechnikov_2d, space_time_kernel


class TestEpanechnikov1D:
    def test_peak_at_zero(self):
        assert epanechnikov(0.0) == 0.75

    def test_zero_outside_support(self):
        assert epanechnikov(1.5) == 0.0
        assert epanechnikov(-2.0) == 0.0

    def test_boundary(self):
        assert epanechnikov(1.0) == 0.0

    def test_symmetry(self):
        u = np.linspace(0, 1.2, 13)
        assert np.allclose(epanechnikov(u), epanechnikov(-u))

    def test_integrates_to_one(self):
        u = np.linspace(-1, 1, 20001)
        assert np.trapezoid(epanechnikov(u), u) == pytest.approx(1.0, abs=1e-6)

    def test_vectorized(self):
        out = epanechnikov(np.array([0.0, 0.5, 2.0]))
        assert out.shape == (3,)
        assert out[2] == 0.0


class TestEpanechnikov2D:
    def test_peak(self):
        assert epanechnikov_2d(0.0) == pytest.approx(2.0 / np.pi)

    def test_outside(self):
        assert epanechnikov_2d(1.01) == 0.0

    def test_integrates_to_one_over_disk(self):
        # Radial integral: ∫0^1 k(r) 2πr dr = 1.
        r = np.linspace(0, 1, 20001)
        integral = np.trapezoid(epanechnikov_2d(r) * 2 * np.pi * r, r)
        assert integral == pytest.approx(1.0, abs=1e-6)


class TestSpaceTimeKernel:
    def test_positive_inside_support(self):
        assert space_time_kernel(0.5, 0.5, 1.0, 1.0) > 0

    def test_zero_outside_space(self):
        assert space_time_kernel(1.5, 0.0, 1.0, 1.0) == 0

    def test_zero_outside_time(self):
        assert space_time_kernel(0.0, 2.0, 1.0, 1.0) == 0

    def test_bandwidth_scaling(self):
        # Doubling both bandwidths scales the peak by 1/(4*2) = 1/8.
        peak1 = space_time_kernel(0.0, 0.0, 1.0, 1.0)
        peak2 = space_time_kernel(0.0, 0.0, 2.0, 2.0)
        assert peak2 == pytest.approx(peak1 / 8)

    def test_invalid_bandwidths(self):
        with pytest.raises(ValueError):
            space_time_kernel(0.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            space_time_kernel(0.0, 0.0, 1.0, -1.0)

    def test_vectorized_shapes(self):
        d = np.zeros((4, 5))
        t = np.zeros((4, 5))
        assert space_time_kernel(d, t, 2.0, 3.0).shape == (4, 5)
