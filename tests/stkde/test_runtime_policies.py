"""Tests for the scheduler policy / creation-throttling extensions."""

import numpy as np
import pytest

from repro.core.algorithms.registry import color_with
from repro.core.problem import IVCInstance
from repro.stkde.runtime import default_costs, simulate_schedule


@pytest.fixture
def colored(rng):
    inst = IVCInstance.from_grid_2d(rng.integers(0, 10, size=(6, 6)))
    return color_with(inst, "GLF")


class TestPolicies:
    def test_unknown_policy_rejected(self, colored):
        with pytest.raises(ValueError, match="policy"):
            simulate_schedule(colored, 2, policy="random")

    def test_lifo_valid_schedule(self, colored):
        costs = default_costs(colored.instance)
        trace = simulate_schedule(colored, 3, costs=costs, policy="lifo")
        assert trace.makespan >= trace.critical_path - 1e-9
        assert trace.makespan >= trace.total_work / 3 - 1e-9
        # Graham bound still applies to any list schedule.
        assert trace.makespan <= trace.total_work / 3 + trace.critical_path + 1e-9

    def test_lifo_single_worker_same_total(self, colored):
        costs = default_costs(colored.instance)
        fifo = simulate_schedule(colored, 1, costs=costs, policy="fifo")
        lifo = simulate_schedule(colored, 1, costs=costs, policy="lifo")
        assert fifo.makespan == pytest.approx(lifo.makespan)

    def test_policies_deterministic(self, colored):
        for policy in ("fifo", "lifo"):
            a = simulate_schedule(colored, 4, policy=policy)
            b = simulate_schedule(colored, 4, policy=policy)
            assert a.makespan == b.makespan


class TestCreationWindow:
    def test_invalid_window(self, colored):
        with pytest.raises(ValueError, match="window"):
            simulate_schedule(colored, 2, creation_window=0)

    def test_window_one_serializes_in_creation_order(self, colored):
        costs = default_costs(colored.instance)
        trace = simulate_schedule(colored, 8, costs=costs, creation_window=1)
        # One live task at a time: makespan equals total work.
        active = colored.instance.weights > 0
        assert trace.makespan == pytest.approx(costs[active].sum())

    def test_huge_window_matches_unthrottled(self, colored):
        costs = default_costs(colored.instance)
        free = simulate_schedule(colored, 4, costs=costs)
        windowed = simulate_schedule(colored, 4, costs=costs, creation_window=10_000)
        assert free.makespan == pytest.approx(windowed.makespan)

    def test_window_never_speeds_up(self, colored):
        costs = default_costs(colored.instance)
        free = simulate_schedule(colored, 4, costs=costs).makespan
        for window in (2, 4, 16):
            throttled = simulate_schedule(
                colored, 4, costs=costs, creation_window=window
            ).makespan
            assert throttled >= free - 1e-9

    def test_all_tasks_finish(self, colored):
        trace = simulate_schedule(colored, 3, creation_window=3)
        active = colored.instance.weights > 0
        assert np.all(trace.finish_times[active] > 0)

    def test_window_with_lifo(self, colored):
        trace = simulate_schedule(colored, 3, policy="lifo", creation_window=4)
        assert trace.makespan > 0
