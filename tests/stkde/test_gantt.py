"""Tests for the Gantt renderer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.algorithms.registry import color_with
from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.stkde.gantt import _assign_lanes, gantt_svg
from repro.stkde.runtime import default_costs, simulate_schedule

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture
def schedule(rng):
    inst = IVCInstance.from_grid_2d(rng.integers(1, 10, size=(5, 5)))
    coloring = color_with(inst, "GLF")
    trace = simulate_schedule(coloring, num_workers=3)
    return coloring, trace


class TestLaneAssignment:
    def test_sequential_tasks_share_lane(self):
        starts = np.array([0.0, 5.0, 10.0])
        finishes = np.array([5.0, 10.0, 12.0])
        lanes = _assign_lanes(starts, finishes, np.arange(3))
        assert set(lanes.tolist()) == {0}

    def test_overlapping_tasks_get_distinct_lanes(self):
        starts = np.array([0.0, 1.0, 2.0])
        finishes = np.array([10.0, 10.0, 10.0])
        lanes = _assign_lanes(starts, finishes, np.arange(3))
        assert sorted(lanes.tolist()) == [0, 1, 2]

    def test_lane_count_bounded_by_workers(self, schedule):
        coloring, trace = schedule
        active = np.flatnonzero(coloring.instance.weights > 0)
        order = active[np.argsort(trace.start_times[active], kind="stable")]
        lanes = _assign_lanes(trace.start_times, trace.finish_times, order)
        assert lanes[active].max() < 3  # never more lanes than workers


class TestGanttSVG:
    def test_well_formed_with_task_bars(self, schedule):
        coloring, trace = schedule
        svg = gantt_svg(coloring, trace, title="test schedule")
        root = ET.fromstring(svg)
        rects = root.findall(f"{SVG_NS}rect")
        active = int((coloring.instance.weights > 0).sum())
        assert len(rects) == active + 1  # background + one bar per task
        assert "test schedule" in svg
        assert "makespan" in svg

    def test_empty_schedule(self):
        inst = IVCInstance.from_grid_2d(np.zeros((2, 2), dtype=int))
        coloring = Coloring(instance=inst, starts=np.zeros(4, dtype=np.int64))
        trace = simulate_schedule(coloring, num_workers=2)
        svg = gantt_svg(coloring, trace)
        assert ET.fromstring(svg).tag == f"{SVG_NS}svg"
