"""The architecture lint (tools/check_layers.py) must hold in tier-1 runs.

CI runs the script as a standalone job; this test enforces the same
constraints locally so a layering regression fails ``pytest`` immediately
instead of surfacing only on push.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "tools" / "check_layers.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_layers", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_layering_violations():
    checker = _load_checker()
    violations = checker.check(REPO_ROOT)
    assert violations == [], "\n".join(violations)


def test_script_exits_zero():
    """The CI entry point (plain `python tools/check_layers.py`) is green."""
    proc = subprocess.run(
        [sys.executable, str(SCRIPT)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "layering: OK" in proc.stdout


def test_lint_catches_env_read(tmp_path):
    """Sanity: the lint actually flags an os.environ read in a fake tree."""
    checker = _load_checker()
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import os\nX = os.environ.get('Y')\n")
    violations = checker.check(tmp_path)
    assert len(violations) == 1
    assert "os.environ" in violations[0]


def test_lint_catches_upward_import(tmp_path):
    """Sanity: the lint flags a module-level import of a higher layer."""
    checker = _load_checker()
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("from repro.service import server\n")
    violations = checker.check(tmp_path)
    assert len(violations) == 1
    assert "higher layer 'service'" in violations[0]


def test_lint_exempts_function_scoped_imports(tmp_path):
    """Lazy (function-level) imports are runtime edges, not layering edges."""
    checker = _load_checker()
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text(
        "def f():\n    from repro.kernels import colorings\n    return colorings\n"
    )
    assert checker.check(tmp_path) == []


def test_incremental_is_a_known_subsystem():
    """The recolor engine takes part in the cross-subsystem discipline."""
    checker = _load_checker()
    assert "incremental" in checker.LAYERS
    assert "incremental" in checker.SUBSYSTEMS
    assert checker.INCREMENTAL_BANNED == frozenset({"service", "tiling"})


def test_lint_bans_lazy_service_import_in_incremental(tmp_path):
    """Inside repro/incremental even a function-scoped service import is an
    edge — the engine must stay composable below the service layer."""
    checker = _load_checker()
    pkg = tmp_path / "src" / "repro" / "incremental"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "def f():\n    from repro.service import client\n    return client\n"
    )
    violations = checker.check(tmp_path)
    assert len(violations) == 1
    assert "repro.service" in violations[0]
    assert "bad.py:2" in violations[0]


def test_lint_bans_tiling_import_in_incremental(tmp_path):
    checker = _load_checker()
    pkg = tmp_path / "src" / "repro" / "incremental"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import repro.tiling.stitch\n")
    violations = checker.check(tmp_path)
    assert any("repro.tiling" in v for v in violations)


def test_campaign_is_a_known_layer():
    """The campaign driver sits with experiments/reports, below api/cli."""
    checker = _load_checker()
    assert checker.LAYERS["campaign"] == checker.LAYERS["experiments"]
    assert checker.LAYERS["campaign"] < checker.LAYERS["api"]
    assert checker.CAMPAIGN_BANNED == frozenset({"service", "tiling", "incremental"})


def test_lint_bans_lazy_service_import_in_campaign(tmp_path):
    """Campaigns execute through the batch engine only — even a lazy
    service/tiling/incremental import is a forbidden edge."""
    checker = _load_checker()
    pkg = tmp_path / "src" / "repro" / "campaign"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "def f():\n    from repro.service import client\n    return client\n"
    )
    violations = checker.check(tmp_path)
    assert len(violations) == 1
    assert "repro.service" in violations[0]


def test_lint_allows_engine_import_in_campaign(tmp_path):
    """Composing the engine with obs/runtime is the campaign's job."""
    checker = _load_checker()
    pkg = tmp_path / "src" / "repro" / "campaign"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text(
        "from repro.engine import run_grid\n"
        "from repro.obs.metrics import merge_snapshots\n"
        "from repro.runtime.config import RuntimeConfig\n"
    )
    assert checker.check(tmp_path) == []


def test_lint_bans_engine_import_in_benchmarks(tmp_path):
    """benchmarks/ reach execution via repro.campaign, never the engine."""
    checker = _load_checker()
    (tmp_path / "src" / "repro").mkdir(parents=True)
    bench = tmp_path / "benchmarks"
    bench.mkdir()
    (bench / "bench_bad.py").write_text(
        "def f():\n    from repro.engine import run_grid\n    return run_grid\n"
    )
    violations = checker.check(tmp_path)
    assert len(violations) == 1
    assert "repro.engine" in violations[0]
    assert "bench_bad.py:2" in violations[0]


def test_lint_allows_campaign_import_in_benchmarks(tmp_path):
    checker = _load_checker()
    (tmp_path / "src" / "repro").mkdir(parents=True)
    bench = tmp_path / "benchmarks"
    bench.mkdir()
    (bench / "bench_ok.py").write_text(
        "from repro.campaign import run_campaign\n"
    )
    assert checker.check(tmp_path) == []


def test_lint_allows_kernels_import_in_incremental(tmp_path):
    """kernels/core are the engine's sanctioned dependencies."""
    checker = _load_checker()
    pkg = tmp_path / "src" / "repro" / "incremental"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text(
        "from repro.kernels.wavefront import first_fit_intervals\n"
        "def f():\n    from repro.core.problem import IVCInstance\n"
        "    return IVCInstance\n"
    )
    assert checker.check(tmp_path) == []
