"""Property tests for Morton (Z-order) indexing against recursive references.

The bit-dilation ("magic numbers") implementation in
:mod:`repro.stencil.zorder` is checked against two pure-Python references:

* a per-coordinate *recursive* bit-interleaver (``key(i, j) = interleave of
  the low bits plus 4 * key(i >> 1, j >> 1)``), and
* a recursive quadtree/octree traversal that enumerates an arbitrary
  (non-power-of-two) grid in Z-order directly.

Both must agree with the vectorized keys and argsorts on arbitrary shapes,
including degenerate ones (single rows/columns/pencils), and the
``MAX_BITS`` coordinate bounds must be enforced with :class:`ValueError`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stencil.zorder import (
    MAX_BITS_2D,
    MAX_BITS_3D,
    morton_argsort_2d,
    morton_argsort_3d,
    morton_key_2d,
    morton_key_3d,
)


def ref_key_recursive(coords: tuple[int, ...]) -> int:
    """Recursive pure-Python Morton key: interleave low bits, recurse on >>1."""
    if all(c == 0 for c in coords):
        return 0
    d = len(coords)
    low = sum((c & 1) << axis for axis, c in enumerate(coords))
    return low + (ref_key_recursive(tuple(c >> 1 for c in coords)) << d)


def ref_zorder_traversal(shape: tuple[int, ...]) -> list[int]:
    """Row-major flat ids of ``shape`` in Z-order, by recursive subdivision.

    Recurses over the power-of-two bounding box, visiting child boxes in
    Z-child order (axis 0 is the least significant bit) and skipping boxes
    that fall entirely outside the grid — the classic quadtree/octree
    definition of the Z-curve, independent of any bit arithmetic.
    """
    d = len(shape)
    side = 1
    while side < max(shape):
        side *= 2
    strides = [1] * d
    for axis in range(d - 2, -1, -1):
        strides[axis] = strides[axis + 1] * shape[axis + 1]

    out: list[int] = []

    def visit(origin: tuple[int, ...], size: int) -> None:
        if any(o >= s for o, s in zip(origin, shape)):
            return
        if size == 1:
            out.append(sum(o * st_ for o, st_ in zip(origin, strides)))
            return
        half = size // 2
        for child in range(1 << d):
            # Bit ``axis`` of ``child`` selects the upper half along that axis.
            corner = tuple(
                o + (half if (child >> axis) & 1 else 0)
                for axis, o in enumerate(origin)
            )
            visit(corner, half)

    visit((0,) * d, side)
    return out


shapes_2d = st.tuples(st.integers(1, 12), st.integers(1, 12))
shapes_3d = st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))


class TestKeysMatchRecursiveReference:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**MAX_BITS_2D - 1),
                st.integers(0, 2**MAX_BITS_2D - 1),
            ),
            min_size=1,
            max_size=32,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_2d_keys(self, pairs):
        i = np.array([p[0] for p in pairs], dtype=np.int64)
        j = np.array([p[1] for p in pairs], dtype=np.int64)
        keys = morton_key_2d(i, j)
        expected = [ref_key_recursive((int(a), int(b))) for a, b in pairs]
        assert [int(k) for k in keys] == expected

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**MAX_BITS_3D - 1),
                st.integers(0, 2**MAX_BITS_3D - 1),
                st.integers(0, 2**MAX_BITS_3D - 1),
            ),
            min_size=1,
            max_size=32,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_3d_keys(self, triples):
        i = np.array([p[0] for p in triples], dtype=np.int64)
        j = np.array([p[1] for p in triples], dtype=np.int64)
        k = np.array([p[2] for p in triples], dtype=np.int64)
        keys = morton_key_3d(i, j, k)
        expected = [ref_key_recursive(tuple(map(int, p))) for p in triples]
        assert [int(key) for key in keys] == expected


class TestArgsortMatchesRecursiveTraversal:
    @given(shapes_2d)
    @settings(max_examples=40, deadline=None)
    def test_2d_any_shape(self, shape):
        assert morton_argsort_2d(shape).tolist() == ref_zorder_traversal(shape)

    @given(shapes_3d)
    @settings(max_examples=25, deadline=None)
    def test_3d_any_shape(self, shape):
        assert morton_argsort_3d(shape).tolist() == ref_zorder_traversal(shape)

    @pytest.mark.parametrize(
        "shape", [(1, 1), (1, 9), (9, 1), (3, 5), (7, 11), (1, 2**10)]
    )
    def test_2d_degenerate_and_non_power_of_two(self, shape):
        assert morton_argsort_2d(shape).tolist() == ref_zorder_traversal(shape)

    @pytest.mark.parametrize(
        "shape", [(1, 1, 1), (1, 1, 8), (1, 7, 1), (5, 1, 5), (3, 5, 7)]
    )
    def test_3d_degenerate_and_non_power_of_two(self, shape):
        assert morton_argsort_3d(shape).tolist() == ref_zorder_traversal(shape)


class TestMaxBitsBoundary:
    def test_2d_boundary_value_ok(self):
        top = 2**MAX_BITS_2D - 1
        assert int(morton_key_2d(top, top)) == ref_key_recursive((top, top))

    def test_3d_boundary_value_ok(self):
        top = 2**MAX_BITS_3D - 1
        assert int(morton_key_3d(top, top, top)) == ref_key_recursive(
            (top, top, top)
        )

    @pytest.mark.parametrize("i,j", [(2**MAX_BITS_2D, 0), (0, 2**MAX_BITS_2D), (-1, 0), (0, -1)])
    def test_2d_out_of_range_rejected(self, i, j):
        with pytest.raises(ValueError):
            morton_key_2d(i, j)

    @pytest.mark.parametrize(
        "i,j,k",
        [(2**MAX_BITS_3D, 0, 0), (0, 2**MAX_BITS_3D, 0), (0, 0, 2**MAX_BITS_3D), (-1, 0, 0)],
    )
    def test_3d_out_of_range_rejected(self, i, j, k):
        with pytest.raises(ValueError):
            morton_key_3d(i, j, k)
