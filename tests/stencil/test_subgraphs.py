"""Tests for the simple-cycle enumerator."""

import numpy as np
import pytest

from repro.stencil.generic import clique_graph, cycle_graph, path_graph
from repro.stencil.grid2d import StencilGrid2D
from repro.stencil.subgraphs import (
    count_cycles_by_length,
    enumerate_odd_cycles,
    enumerate_simple_cycles,
)


def nx_cycle_count(graph, max_len):
    import networkx as nx

    from repro.stencil.generic import to_networkx

    return sum(
        1
        for c in nx.simple_cycles(to_networkx(graph), length_bound=max_len)
        if len(c) >= 3
    )


class TestEnumeration:
    def test_single_cycle_graph(self):
        cycles = list(enumerate_simple_cycles(cycle_graph(5), max_len=5))
        assert len(cycles) == 1
        assert sorted(cycles[0]) == [0, 1, 2, 3, 4]

    def test_cycle_reported_once_canonical(self):
        cycles = list(enumerate_simple_cycles(cycle_graph(4), max_len=6))
        assert len(cycles) == 1
        cycle = cycles[0]
        assert cycle[0] == 0  # rooted at min vertex
        assert cycle[1] < cycle[-1]  # canonical orientation

    def test_path_has_no_cycles(self):
        assert list(enumerate_simple_cycles(path_graph(6), max_len=6)) == []

    def test_k4_counts(self):
        # K4 has 4 triangles and 3 four-cycles.
        counts = count_cycles_by_length(clique_graph(4), max_len=4)
        assert counts == {3: 4, 4: 3}

    def test_max_len_respected(self):
        counts = count_cycles_by_length(clique_graph(5), max_len=3)
        assert set(counts) == {3}
        assert counts[3] == 10  # C(5,3) triangles

    def test_below_three_empty(self):
        assert list(enumerate_simple_cycles(clique_graph(3), max_len=2)) == []

    @pytest.mark.parametrize("max_len", [3, 4, 5])
    def test_matches_networkx_on_stencil(self, max_len):
        graph = StencilGrid2D(3, 3).csr
        ours = sum(1 for _ in enumerate_simple_cycles(graph, max_len))
        assert ours == nx_cycle_count(graph, max_len)

    def test_matches_networkx_on_random_graph(self, rng):
        from repro.stencil.generic import from_edges

        n = 8
        edges = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.35
        ]
        graph = from_edges(n, edges)
        ours = sum(1 for _ in enumerate_simple_cycles(graph, max_len=6))
        assert ours == nx_cycle_count(graph, 6)

    def test_cycles_are_actual_cycles(self):
        graph = StencilGrid2D(3, 3).csr
        for cycle in enumerate_simple_cycles(graph, max_len=5):
            assert len(set(cycle)) == len(cycle)
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                assert graph.has_edge(a, b), (cycle, a, b)


class TestOddCycles:
    def test_only_odd_lengths(self):
        graph = StencilGrid2D(3, 3).csr
        lengths = {len(c) for c in enumerate_odd_cycles(graph, max_len=5)}
        assert lengths and all(length % 2 == 1 for length in lengths)

    def test_even_cycle_graph_has_none(self):
        assert list(enumerate_odd_cycles(cycle_graph(6), max_len=6)) == []

    def test_figure2_c7_found(self):
        from repro.data.paper_instances import figure2_odd_cycle

        inst = figure2_odd_cycle()
        positive = set(np.flatnonzero(inst.weights > 0).tolist())
        found = any(
            set(c) == positive for c in enumerate_odd_cycles(inst.graph, max_len=7)
        )
        assert found
