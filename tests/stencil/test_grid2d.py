"""Tests for the 9-pt 2D stencil substrate."""

import numpy as np
import pytest

from repro.stencil.grid2d import OFFSETS_5PT, OFFSETS_9PT, StencilGrid2D


class TestBasics:
    def test_shape_and_count(self):
        g = StencilGrid2D(4, 7)
        assert g.shape == (4, 7)
        assert g.num_vertices == 28

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            StencilGrid2D(0, 3)

    def test_vertex_id_coords_roundtrip(self):
        g = StencilGrid2D(5, 6)
        ids = np.arange(g.num_vertices)
        i, j = g.coords(ids)
        assert np.array_equal(g.vertex_id(i, j), ids)

    def test_vertex_id_row_major(self):
        g = StencilGrid2D(3, 4)
        assert g.vertex_id(0, 0) == 0
        assert g.vertex_id(0, 3) == 3
        assert g.vertex_id(1, 0) == 4
        assert g.vertex_id(2, 3) == 11

    def test_equality_and_hash(self):
        assert StencilGrid2D(3, 4) == StencilGrid2D(3, 4)
        assert StencilGrid2D(3, 4) != StencilGrid2D(4, 3)
        assert hash(StencilGrid2D(3, 4)) == hash(StencilGrid2D(3, 4))

    def test_offsets_counts(self):
        assert len(OFFSETS_9PT) == 8
        assert len(OFFSETS_5PT) == 4


class TestAdjacency:
    def test_degree_corner_edge_interior(self):
        g = StencilGrid2D(4, 4)
        csr = g.csr
        assert csr.degree(g.vertex_id(0, 0)) == 3  # corner
        assert csr.degree(g.vertex_id(0, 1)) == 5  # edge
        assert csr.degree(g.vertex_id(1, 1)) == 8  # interior

    def test_total_edges_formula(self):
        # 9-pt stencil on X*Y: horizontal X(Y-1)... careful: edges =
        # (X-1)Y + X(Y-1) + 2(X-1)(Y-1).
        X, Y = 5, 3
        g = StencilGrid2D(X, Y)
        expected = (X - 1) * Y + X * (Y - 1) + 2 * (X - 1) * (Y - 1)
        assert g.csr.num_edges == expected

    def test_csr_valid(self):
        StencilGrid2D(4, 5).csr.validate()

    def test_adjacency_matches_definition(self):
        g = StencilGrid2D(4, 4)
        csr = g.csr
        for v in range(g.num_vertices):
            i, j = g.coords(v)
            for u in csr.neighbors(v):
                ui, uj = g.coords(int(u))
                assert abs(int(i) - int(ui)) <= 1 and abs(int(j) - int(uj)) <= 1
                assert (ui, uj) != (i, j)

    def test_neighbors_method_matches_csr(self):
        g = StencilGrid2D(3, 5)
        for i in range(3):
            for j in range(5):
                from_method = {g.vertex_id(a, b).item() for a, b in g.neighbors(i, j)}
                from_csr = set(g.csr.neighbors(int(g.vertex_id(i, j))).tolist())
                assert from_method == from_csr

    def test_5pt_is_subgraph_and_bipartite(self):
        from repro.stencil.generic import is_bipartite

        g = StencilGrid2D(4, 4)
        edges9 = {tuple(e) for e in g.csr.edges().tolist()}
        edges5 = {tuple(e) for e in g.csr_5pt.edges().tolist()}
        assert edges5 < edges9
        ok, side = is_bipartite(g.csr_5pt)
        assert ok
        # Sides are the parity classes of i + j.
        i, j = g.coords(np.arange(g.num_vertices))
        parity = (i + j) % 2
        assert np.all((side == side[0]) == (parity == parity[0]))

    def test_5pt_degree(self):
        g = StencilGrid2D(4, 4)
        assert g.csr_5pt.degree(int(g.vertex_id(1, 1))) == 4
        assert g.csr_5pt.degree(int(g.vertex_id(0, 0))) == 2


class TestBlocks:
    def test_block_count(self):
        g = StencilGrid2D(5, 4)
        assert len(g.k4_blocks) == 4 * 3

    def test_blocks_are_cliques(self):
        g = StencilGrid2D(4, 4)
        csr = g.csr
        for block in g.k4_blocks:
            for a in block:
                for b in block:
                    if a != b:
                        assert csr.has_edge(int(a), int(b))

    def test_block_weight_sums(self):
        g = StencilGrid2D(3, 3)
        w = np.arange(9)
        sums = g.block_weight_sums(w)
        grid = w.reshape(3, 3)
        expected = [
            grid[i : i + 2, j : j + 2].sum() for i in range(2) for j in range(2)
        ]
        assert sorted(sums.tolist()) == sorted(expected)

    def test_thin_grid_no_blocks(self):
        g = StencilGrid2D(1, 5)
        assert len(g.k4_blocks) == 0
        assert len(g.block_weight_sums(np.ones(5))) == 0


class TestRowsAndOrders:
    def test_row_ids(self):
        g = StencilGrid2D(3, 4)
        assert g.row_ids(0).tolist() == [0, 4, 8]
        assert g.row_ids(3).tolist() == [3, 7, 11]

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            StencilGrid2D(3, 4).row_ids(4)

    def test_rows_partition_vertices(self):
        g = StencilGrid2D(4, 3)
        all_ids = np.concatenate(g.rows())
        assert sorted(all_ids.tolist()) == list(range(g.num_vertices))

    def test_rows_are_chains(self):
        g = StencilGrid2D(4, 3)
        csr = g.csr
        for row in g.rows():
            for a, b in zip(row, row[1:]):
                assert csr.has_edge(int(a), int(b))

    def test_line_by_line_is_permutation(self):
        g = StencilGrid2D(4, 5)
        order = g.line_by_line_order()
        assert sorted(order.tolist()) == list(range(20))

    def test_line_by_line_scans_rows(self):
        g = StencilGrid2D(3, 2)
        order = g.line_by_line_order()
        # Row j=0 first (ids 0, 2, 4), then row j=1 (ids 1, 3, 5).
        assert order.tolist() == [0, 2, 4, 1, 3, 5]

    def test_weights_as_grid(self):
        g = StencilGrid2D(2, 3)
        w = np.arange(6)
        assert g.weights_as_grid(w).shape == (2, 3)
        assert g.weights_as_grid(w)[1, 2] == w[g.vertex_id(1, 2)]
