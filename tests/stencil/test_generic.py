"""Tests for the CSR graph container and structured-graph constructors."""

import numpy as np
import pytest

from repro.stencil.generic import (
    CSRGraph,
    clique_graph,
    cycle_graph,
    from_edges,
    from_networkx,
    is_bipartite,
    path_graph,
    star_graph,
    to_networkx,
)


class TestFromEdges:
    def test_simple_triangle(self):
        g = from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_duplicate_edges_collapse(self):
        g = from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            from_edges(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edges(2, [(0, 2)])

    def test_isolated_vertices_allowed(self):
        g = from_edges(5, [(0, 1)])
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_empty_graph(self):
        g = from_edges(3, [])
        assert g.num_edges == 0
        assert g.max_degree() == 0

    def test_neighbors_sorted_within_vertex(self):
        g = from_edges(4, [(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0).tolist() == [1, 2, 3]


class TestCSRGraph:
    def test_edges_each_once_with_u_less_v(self):
        g = cycle_graph(5)
        edges = g.edges()
        assert len(edges) == 5
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_degrees(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.degrees().tolist() == [4, 1, 1, 1, 1]
        assert g.max_degree() == 4

    def test_has_edge(self):
        g = path_graph(3)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)

    def test_validate_passes_on_good_graph(self):
        cycle_graph(7).validate()

    def test_validate_rejects_asymmetric(self):
        g = CSRGraph(
            indptr=np.array([0, 1, 1]), indices=np.array([1])
        )
        with pytest.raises(ValueError, match="symmetric"):
            g.validate()

    def test_validate_rejects_self_loop(self):
        g = CSRGraph(indptr=np.array([0, 1]), indices=np.array([0]))
        with pytest.raises(ValueError, match="self-loop"):
            g.validate()

    def test_validate_rejects_bad_indptr(self):
        g = CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([1, 0]))
        with pytest.raises(ValueError):
            g.validate()


class TestConstructors:
    def test_path(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert g.degree(0) == 1 and g.degree(1) == 2

    def test_path_single_vertex(self):
        assert path_graph(1).num_edges == 0

    def test_path_needs_vertex(self):
        with pytest.raises(ValueError):
            path_graph(0)

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in range(6))

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_clique(self):
        g = clique_graph(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in range(5))

    def test_star(self):
        g = star_graph(3)
        assert g.num_edges == 3
        assert g.degree(0) == 3


class TestNetworkxBridge:
    def test_roundtrip(self):
        g = cycle_graph(5)
        nxg = to_networkx(g)
        assert nxg.number_of_edges() == 5
        back, nodes = from_networkx(nxg)
        assert back.num_edges == 5
        assert len(nodes) == 5

    def test_from_networkx_arbitrary_labels(self):
        import networkx as nx

        nxg = nx.Graph([("a", "b"), ("b", "c")])
        csr, nodes = from_networkx(nxg)
        assert csr.num_vertices == 3
        assert csr.num_edges == 2
        assert set(nodes) == {"a", "b", "c"}


class TestIsBipartite:
    def test_path_is_bipartite(self):
        ok, side = is_bipartite(path_graph(5))
        assert ok
        assert side.tolist() == [0, 1, 0, 1, 0]

    def test_even_cycle_is_bipartite(self):
        ok, _ = is_bipartite(cycle_graph(6))
        assert ok

    def test_odd_cycle_is_not(self):
        ok, _ = is_bipartite(cycle_graph(5))
        assert not ok

    def test_triangle_is_not(self):
        ok, _ = is_bipartite(clique_graph(3))
        assert not ok

    def test_disconnected_components(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        ok, side = is_bipartite(g)
        assert ok
        assert side[0] != side[1] and side[2] != side[3]

    def test_isolated_vertices_side_zero(self):
        g = from_edges(3, [])
        ok, side = is_bipartite(g)
        assert ok
        assert side.tolist() == [0, 0, 0]
