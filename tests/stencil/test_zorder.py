"""Tests for Morton (Z-order) indexing."""

import numpy as np
import pytest

from repro.stencil.zorder import (
    morton_argsort_2d,
    morton_argsort_3d,
    morton_key_2d,
    morton_key_3d,
)


class TestKeys2D:
    def test_origin_is_zero(self):
        assert morton_key_2d(0, 0) == 0

    def test_bit_interleaving(self):
        # key(i, j) interleaves bits: i contributes even bits, j odd bits.
        assert morton_key_2d(1, 0) == 1
        assert morton_key_2d(0, 1) == 2
        assert morton_key_2d(1, 1) == 3
        assert morton_key_2d(2, 0) == 4
        assert morton_key_2d(2, 2) == 12

    def test_vectorized_matches_scalar(self):
        i = np.array([0, 1, 5, 100, 2**20])
        j = np.array([3, 2, 7, 50, 2**19])
        keys = morton_key_2d(i, j)
        for a, b, k in zip(i, j, keys):
            assert morton_key_2d(int(a), int(b)) == k

    def test_injective_on_grid(self):
        i, j = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
        keys = morton_key_2d(i.ravel(), j.ravel())
        assert len(np.unique(keys)) == 256

    def test_quadrant_order(self):
        # All of the lower-left 2x2 quadrant precedes the upper-right one.
        ll = morton_key_2d([0, 1, 0, 1], [0, 0, 1, 1])
        ur = morton_key_2d([2, 3, 2, 3], [2, 2, 3, 3])
        assert ll.max() < ur.min()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            morton_key_2d(-1, 0)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            morton_key_2d(2**32, 0)


class TestKeys3D:
    def test_origin_is_zero(self):
        assert morton_key_3d(0, 0, 0) == 0

    def test_axis_bits(self):
        assert morton_key_3d(1, 0, 0) == 1
        assert morton_key_3d(0, 1, 0) == 2
        assert morton_key_3d(0, 0, 1) == 4
        assert morton_key_3d(1, 1, 1) == 7

    def test_injective_on_grid(self):
        i, j, k = np.meshgrid(np.arange(8), np.arange(8), np.arange(8), indexing="ij")
        keys = morton_key_3d(i.ravel(), j.ravel(), k.ravel())
        assert len(np.unique(keys)) == 512

    def test_max_bits(self):
        big = 2**21 - 1
        assert morton_key_3d(big, 0, 0) > 0
        with pytest.raises(ValueError):
            morton_key_3d(2**21, 0, 0)


class TestArgsort:
    def test_2d_is_permutation(self):
        order = morton_argsort_2d((5, 7))
        assert sorted(order.tolist()) == list(range(35))

    def test_3d_is_permutation(self):
        order = morton_argsort_3d((3, 4, 5))
        assert sorted(order.tolist()) == list(range(60))

    def test_2d_first_quad(self):
        # On a 4x4 grid the first four visited cells are the lower 2x2 block.
        order = morton_argsort_2d((4, 4))
        firsts = {(int(v) // 4, int(v) % 4) for v in order[:4]}
        assert firsts == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_non_power_of_two_shapes(self):
        order = morton_argsort_2d((3, 5))
        assert len(order) == 15
        assert order[0] == 0
