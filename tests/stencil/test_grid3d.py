"""Tests for the 27-pt 3D stencil substrate."""

import numpy as np
import pytest

from repro.stencil.grid3d import OFFSETS_7PT, OFFSETS_27PT, StencilGrid3D


class TestBasics:
    def test_shape_and_count(self):
        g = StencilGrid3D(3, 4, 5)
        assert g.shape == (3, 4, 5)
        assert g.num_vertices == 60

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            StencilGrid3D(2, 0, 2)

    def test_vertex_id_coords_roundtrip(self):
        g = StencilGrid3D(3, 4, 5)
        ids = np.arange(g.num_vertices)
        i, j, k = g.coords(ids)
        assert np.array_equal(g.vertex_id(i, j, k), ids)

    def test_offsets_counts(self):
        assert len(OFFSETS_27PT) == 26
        assert len(OFFSETS_7PT) == 6

    def test_equality(self):
        assert StencilGrid3D(2, 3, 4) == StencilGrid3D(2, 3, 4)
        assert StencilGrid3D(2, 3, 4) != StencilGrid3D(4, 3, 2)


class TestAdjacency:
    def test_degree_corner_and_interior(self):
        g = StencilGrid3D(3, 3, 3)
        csr = g.csr
        assert csr.degree(int(g.vertex_id(0, 0, 0))) == 7  # corner
        assert csr.degree(int(g.vertex_id(1, 1, 1))) == 26  # interior

    def test_degree_face_and_edge_centers(self):
        g = StencilGrid3D(3, 3, 3)
        csr = g.csr
        assert csr.degree(int(g.vertex_id(1, 1, 0))) == 17  # face center
        assert csr.degree(int(g.vertex_id(1, 0, 0))) == 11  # edge center

    def test_csr_valid(self):
        StencilGrid3D(2, 3, 4).csr.validate()

    def test_adjacency_matches_definition(self):
        g = StencilGrid3D(3, 2, 3)
        csr = g.csr
        for v in range(g.num_vertices):
            ci = g.coords(v)
            for u in csr.neighbors(v):
                cu = g.coords(int(u))
                assert all(abs(int(a) - int(b)) <= 1 for a, b in zip(ci, cu))

    def test_neighbors_method_matches_csr(self):
        g = StencilGrid3D(2, 3, 2)
        for v in range(g.num_vertices):
            i, j, k = (int(c) for c in g.coords(v))
            from_method = {
                int(g.vertex_id(*c)) for c in g.neighbors(i, j, k)
            }
            assert from_method == set(g.csr.neighbors(v).tolist())

    def test_7pt_is_subgraph_and_bipartite(self):
        from repro.stencil.generic import is_bipartite

        g = StencilGrid3D(3, 3, 3)
        edges27 = {tuple(e) for e in g.csr.edges().tolist()}
        edges7 = {tuple(e) for e in g.csr_7pt.edges().tolist()}
        assert edges7 < edges27
        ok, _ = is_bipartite(g.csr_7pt)
        assert ok

    def test_7pt_degree(self):
        g = StencilGrid3D(3, 3, 3)
        assert g.csr_7pt.degree(int(g.vertex_id(1, 1, 1))) == 6


class TestBlocks:
    def test_block_count(self):
        g = StencilGrid3D(3, 4, 5)
        assert len(g.k8_blocks) == 2 * 3 * 4

    def test_blocks_are_cliques(self):
        g = StencilGrid3D(3, 3, 3)
        csr = g.csr
        for block in g.k8_blocks:
            for a in block:
                for b in block:
                    if a != b:
                        assert csr.has_edge(int(a), int(b))

    def test_block_weight_sums_match_cube_sums(self):
        g = StencilGrid3D(3, 3, 3)
        w = np.arange(27)
        grid = w.reshape(3, 3, 3)
        sums = g.block_weight_sums(w)
        expected = [
            grid[i : i + 2, j : j + 2, k : k + 2].sum()
            for i in range(2)
            for j in range(2)
            for k in range(2)
        ]
        assert sorted(sums.tolist()) == sorted(expected)

    def test_thin_grid_no_blocks(self):
        g = StencilGrid3D(1, 3, 3)
        assert len(g.k8_blocks) == 0


class TestLayers:
    def test_layer_partition(self):
        g = StencilGrid3D(3, 2, 4)
        all_ids = np.concatenate(g.layers())
        assert sorted(all_ids.tolist()) == list(range(g.num_vertices))

    def test_layer_out_of_range(self):
        with pytest.raises(IndexError):
            StencilGrid3D(2, 2, 2).layer_ids(2)

    def test_layer_induces_2d_stencil(self):
        g = StencilGrid3D(3, 4, 2)
        layer = g.layer_ids(1)
        g2 = g.layer_grid()
        assert g2.shape == (3, 4)
        # Adjacency within the layer matches the 9-pt 2D stencil.
        csr3 = g.csr
        csr2 = g2.csr
        layer_set = set(layer.tolist())
        for a2 in range(g2.num_vertices):
            a3 = int(layer[a2])
            nbs3 = set(csr3.neighbors(a3).tolist()) & layer_set
            nbs2 = {int(layer[u]) for u in csr2.neighbors(a2)}
            assert nbs3 == nbs2

    def test_line_by_line_is_permutation(self):
        g = StencilGrid3D(2, 3, 4)
        order = g.line_by_line_order()
        assert sorted(order.tolist()) == list(range(24))

    def test_line_by_line_plane_major(self):
        g = StencilGrid3D(2, 2, 2)
        order = g.line_by_line_order()
        # First plane k=0 entirely before plane k=1.
        ks = [int(g.coords(v)[2]) for v in order]
        assert ks == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_weights_as_grid(self):
        g = StencilGrid3D(2, 2, 2)
        w = np.arange(8)
        assert g.weights_as_grid(w)[1, 0, 1] == w[g.vertex_id(1, 0, 1)]
