"""Tests for the IVCInstance container."""

import numpy as np
import pytest

from repro.core.problem import IVCInstance
from repro.stencil.generic import cycle_graph, path_graph
from repro.stencil.grid2d import StencilGrid2D


class TestConstruction:
    def test_from_grid_2d(self):
        inst = IVCInstance.from_grid_2d(np.ones((3, 4), dtype=int))
        assert inst.num_vertices == 12
        assert inst.is_2d and not inst.is_3d
        assert inst.geometry.shape == (3, 4)

    def test_from_grid_3d(self):
        inst = IVCInstance.from_grid_3d(np.ones((2, 3, 4), dtype=int))
        assert inst.num_vertices == 24
        assert inst.is_3d and not inst.is_2d

    def test_from_grid_2d_wrong_ndim(self):
        with pytest.raises(ValueError, match="2D weight grid"):
            IVCInstance.from_grid_2d(np.ones((2, 2, 2)))

    def test_from_grid_3d_wrong_ndim(self):
        with pytest.raises(ValueError, match="3D weight grid"):
            IVCInstance.from_grid_3d(np.ones((4, 4)))

    def test_from_graph(self):
        inst = IVCInstance.from_graph(path_graph(3), [1, 2, 3])
        assert inst.num_vertices == 3
        assert inst.geometry is None
        assert not inst.is_2d and not inst.is_3d

    def test_from_edges(self):
        inst = IVCInstance.from_edges(3, [(0, 1)], [1, 1, 1])
        assert inst.num_edges == 1

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            IVCInstance.from_graph(path_graph(2), [1, -1])

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError, match="expected 3 weights"):
            IVCInstance.from_graph(path_graph(3), [1, 2])

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            IVCInstance(
                graph=cycle_graph(5),
                weights=np.ones(5, dtype=int),
                geometry=StencilGrid2D(2, 2),
            )

    def test_weights_coerced_to_int64(self):
        inst = IVCInstance.from_grid_2d(np.ones((2, 2), dtype=np.int32))
        assert inst.weights.dtype == np.int64


class TestProperties:
    def test_total_weight(self):
        inst = IVCInstance.from_grid_2d([[1, 2], [3, 4]])
        assert inst.total_weight == 10

    def test_weight_grid_roundtrip(self):
        grid = np.arange(6).reshape(2, 3)
        inst = IVCInstance.from_grid_2d(grid)
        assert np.array_equal(inst.weight_grid(), grid)

    def test_weight_grid_requires_geometry(self):
        inst = IVCInstance.from_graph(path_graph(2), [1, 1])
        with pytest.raises(ValueError, match="no stencil geometry"):
            inst.weight_grid()

    def test_metadata_and_name(self):
        inst = IVCInstance.from_grid_2d(
            [[1, 1], [1, 1]], name="x", metadata={"plane": "xy"}
        )
        assert inst.name == "x"
        assert inst.metadata["plane"] == "xy"

    def test_num_edges_2d(self):
        inst = IVCInstance.from_grid_2d(np.ones((2, 2)))
        assert inst.num_edges == 6  # K4
