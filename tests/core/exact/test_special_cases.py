"""Tests for the Section III closed-form optimal colorings."""

import numpy as np
import pytest

from repro.core.bounds import maxpair_bound, odd_cycle_optimum
from repro.core.exact.branch_and_bound import solve_exact
from repro.core.exact.special_cases import (
    color_bipartite,
    color_chain,
    color_clique,
    color_even_cycle,
    color_odd_cycle,
    color_relaxation_5pt,
    color_relaxation_7pt,
    color_star,
)
from repro.core.problem import IVCInstance
from repro.stencil.generic import (
    clique_graph,
    cycle_graph,
    from_edges,
    path_graph,
    star_graph,
)


class TestClique:
    def test_stacks_to_total(self):
        inst = IVCInstance.from_graph(clique_graph(4), [3, 1, 4, 1])
        c = color_clique(inst).check()
        assert c.maxcolor == 9

    def test_single_vertex(self):
        inst = IVCInstance.from_graph(clique_graph(1), [5])
        assert color_clique(inst).maxcolor == 5

    def test_rejects_non_clique(self):
        inst = IVCInstance.from_graph(path_graph(3), [1, 1, 1])
        with pytest.raises(ValueError, match="complete graph"):
            color_clique(inst)

    def test_optimal(self):
        inst = IVCInstance.from_graph(clique_graph(3), [2, 5, 3])
        assert color_clique(inst).maxcolor == solve_exact(inst).maxcolor


class TestBipartite:
    def test_chain_optimal(self):
        inst = IVCInstance.from_graph(path_graph(4), [2, 7, 3, 6])
        c = color_chain(inst).check()
        assert c.maxcolor == maxpair_bound(inst) == 10

    def test_star_optimal(self):
        inst = IVCInstance.from_graph(star_graph(5), [4, 1, 2, 3, 9, 2])
        c = color_star(inst).check()
        assert c.maxcolor == 13  # center 4 + heaviest leaf 9

    def test_even_cycle_optimal(self):
        inst = IVCInstance.from_graph(cycle_graph(6), [5, 2, 8, 1, 6, 3])
        c = color_even_cycle(inst).check()
        assert c.maxcolor == maxpair_bound(inst)

    def test_tree_optimal(self):
        edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]
        inst = IVCInstance.from_edges(6, edges, [3, 5, 2, 7, 1, 4])
        c = color_bipartite(inst).check()
        assert c.maxcolor == maxpair_bound(inst) == 12

    def test_rejects_odd_cycle(self):
        inst = IVCInstance.from_graph(cycle_graph(5), [1] * 5)
        with pytest.raises(ValueError, match="bipartite"):
            color_bipartite(inst)

    def test_isolated_vertices(self):
        inst = IVCInstance.from_graph(from_edges(3, [(0, 1)]), [2, 3, 9])
        c = color_bipartite(inst).check()
        assert c.maxcolor == 9

    def test_matches_exact_on_random_trees(self):
        import networkx as nx

        rng = np.random.default_rng(0)
        for seed in range(4):
            tree = nx.random_labeled_tree(7, seed=seed)
            inst = IVCInstance.from_edges(
                7, list(tree.edges()), rng.integers(1, 9, size=7)
            )
            assert color_bipartite(inst).maxcolor == solve_exact(inst).maxcolor


class TestOddCycle:
    def test_matches_theorem(self):
        w = [4, 7, 2, 9, 5]
        inst = IVCInstance.from_graph(cycle_graph(5), w)
        c = color_odd_cycle(inst).check()
        assert c.maxcolor == odd_cycle_optimum(w)

    def test_matches_exact_on_randoms(self):
        rng = np.random.default_rng(1)
        for n in (3, 5, 7):
            for _ in range(3):
                w = rng.integers(1, 12, size=n)
                inst = IVCInstance.from_graph(cycle_graph(n), w)
                constructed = color_odd_cycle(inst).check()
                assert constructed.maxcolor == solve_exact(inst).maxcolor
                assert constructed.maxcolor == odd_cycle_optimum(w)

    def test_minchain_rotation_handled(self):
        # Min chain sits across the wrap-around seam.
        w = [2, 9, 9, 9, 2]
        inst = IVCInstance.from_graph(cycle_graph(5), w)
        assert color_odd_cycle(inst).check().maxcolor == odd_cycle_optimum(w)

    def test_rejects_even_cycle(self):
        inst = IVCInstance.from_graph(cycle_graph(4), [1] * 4)
        with pytest.raises(ValueError, match="odd cycle"):
            color_odd_cycle(inst)

    def test_rejects_non_cycle(self):
        inst = IVCInstance.from_graph(clique_graph(5), [1] * 5)
        with pytest.raises(ValueError):
            color_odd_cycle(inst)

    def test_triangle(self):
        inst = IVCInstance.from_graph(cycle_graph(3), [4, 5, 6])
        assert color_odd_cycle(inst).check().maxcolor == 15


class TestRelaxations:
    def test_5pt_valid_and_optimal_for_relaxed_graph(self, small_2d):
        c = color_relaxation_5pt(small_2d)
        assert c.is_valid()  # valid w.r.t. the 5-pt graph it carries
        edges = small_2d.geometry.csr_5pt.edges()
        w = small_2d.weights
        expected = max(int(w.max()), int((w[edges[:, 0]] + w[edges[:, 1]]).max()))
        assert c.maxcolor == expected

    def test_5pt_may_violate_9pt(self):
        # The relaxation ignores diagonal conflicts, so diagonally adjacent
        # equal-parity vertices may share colors.
        inst = IVCInstance.from_grid_2d([[5, 0], [0, 5]])
        c = color_relaxation_5pt(inst)
        from repro.core.coloring import Coloring

        nine_pt = Coloring(instance=inst, starts=c.starts)
        assert not nine_pt.is_valid()

    def test_5pt_requires_2d(self, small_3d):
        with pytest.raises(ValueError, match="2DS-IVC"):
            color_relaxation_5pt(small_3d)

    def test_7pt_valid_and_optimal(self, small_3d):
        c = color_relaxation_7pt(small_3d)
        assert c.is_valid()
        edges = small_3d.geometry.csr_7pt.edges()
        w = small_3d.weights
        expected = max(int(w.max()), int((w[edges[:, 0]] + w[edges[:, 1]]).max()))
        assert c.maxcolor == expected

    def test_7pt_requires_3d(self, small_2d):
        with pytest.raises(ValueError, match="3DS-IVC"):
            color_relaxation_7pt(small_2d)
