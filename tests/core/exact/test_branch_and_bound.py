"""Tests for the CSP decision search and binary-search optimizer."""

import numpy as np
import pytest

from repro.core.bounds import lower_bound
from repro.core.exact.branch_and_bound import (
    SearchBudgetExceeded,
    decide_coloring,
    solve_exact,
)
from repro.core.problem import IVCInstance
from repro.stencil.generic import clique_graph, cycle_graph, path_graph
from tests.conftest import random_2d_instances


class TestDecide:
    def test_clique_threshold(self):
        inst = IVCInstance.from_graph(clique_graph(3), [2, 3, 4])
        assert decide_coloring(inst, 8) is None
        found = decide_coloring(inst, 9)
        assert found is not None
        assert found.maxcolor <= 9

    def test_monotone_in_k(self):
        inst = IVCInstance.from_graph(cycle_graph(5), [3, 1, 4, 1, 5])
        feasible = [decide_coloring(inst, k) is not None for k in range(6, 14)]
        # Once feasible, always feasible.
        assert feasible == sorted(feasible)

    def test_zero_weights_trivial(self):
        inst = IVCInstance.from_grid_2d(np.zeros((3, 3), dtype=int))
        assert decide_coloring(inst, 0) is not None

    def test_single_heavy_vertex_infeasible(self):
        inst = IVCInstance.from_graph(path_graph(2), [5, 1])
        assert decide_coloring(inst, 4) is None
        assert decide_coloring(inst, 6) is not None

    def test_negative_k_rejected(self):
        inst = IVCInstance.from_graph(path_graph(2), [1, 1])
        with pytest.raises(ValueError):
            decide_coloring(inst, -1)

    def test_budget_exceeded_raises(self):
        inst = random_2d_instances(count=1, seed=2, max_dim=7, max_w=10)[0]
        k = lower_bound(inst)  # probably tight, hard to decide
        with pytest.raises(SearchBudgetExceeded):
            decide_coloring(inst, k, node_budget=3)

    def test_returned_coloring_validates(self):
        inst = IVCInstance.from_graph(cycle_graph(7), [2, 4, 2, 4, 2, 4, 2])
        c = decide_coloring(inst, 10)
        assert c is not None and c.is_valid()


class TestSolveExact:
    def test_odd_cycle_matches_theorem(self):
        from repro.core.bounds import odd_cycle_optimum

        w = [3, 5, 2, 6, 4]
        inst = IVCInstance.from_graph(cycle_graph(5), w)
        assert solve_exact(inst).maxcolor == odd_cycle_optimum(w)

    def test_matches_milp_on_random_2d(self):
        from repro.core.exact.milp import solve_milp

        for inst in random_2d_instances(count=4, max_dim=5, max_w=6):
            bnb = solve_exact(inst)
            milp = solve_milp(inst, time_limit=30.0)
            assert milp.proven_optimal
            assert bnb.maxcolor == milp.maxcolor
            assert bnb.is_valid()

    def test_at_least_lower_bound(self):
        for inst in random_2d_instances(count=3, max_dim=4, max_w=8):
            assert solve_exact(inst).maxcolor >= lower_bound(inst)

    def test_empty_instance(self):
        inst = IVCInstance.from_edges(0, [], [])
        assert solve_exact(inst).maxcolor == 0

    def test_figure3_value(self):
        from repro.data.paper_instances import (
            FIGURE3_BOUNDS,
            FIGURE3_OPTIMUM,
            figure3_two_cycles,
        )

        inst = figure3_two_cycles()
        opt = solve_exact(inst)
        assert opt.maxcolor == FIGURE3_OPTIMUM > FIGURE3_BOUNDS
