"""Tests for the HiGHS MILP solver."""

import numpy as np
import pytest

from repro.core.exact.branch_and_bound import solve_exact
from repro.core.exact.milp import milp_decide, solve_milp
from repro.core.problem import IVCInstance
from repro.stencil.generic import clique_graph, cycle_graph, path_graph
from tests.conftest import random_2d_instances


class TestSolve:
    def test_clique(self):
        inst = IVCInstance.from_graph(clique_graph(4), [1, 2, 3, 4])
        res = solve_milp(inst)
        assert res.status == "optimal" and res.proven_optimal
        assert res.maxcolor == 10
        assert res.coloring.check().maxcolor == 10

    def test_chain(self):
        inst = IVCInstance.from_graph(path_graph(3), [5, 5, 5])
        assert solve_milp(inst).maxcolor == 10

    def test_odd_cycle(self):
        from repro.core.bounds import odd_cycle_optimum

        w = [4, 4, 4, 4, 4]
        inst = IVCInstance.from_graph(cycle_graph(5), w)
        assert solve_milp(inst).maxcolor == odd_cycle_optimum(w) == 12

    def test_zero_weight_instance(self):
        inst = IVCInstance.from_grid_2d(np.zeros((2, 2), dtype=int))
        res = solve_milp(inst)
        assert res.maxcolor == 0 and res.proven_optimal

    def test_zero_weight_vertices_excluded(self):
        inst = IVCInstance.from_grid_2d([[0, 5], [5, 0]])
        res = solve_milp(inst)
        assert res.maxcolor == 10

    def test_matches_bnb_on_random(self):
        for inst in random_2d_instances(count=5, max_dim=5, max_w=7):
            res = solve_milp(inst, time_limit=30.0)
            assert res.proven_optimal
            assert res.maxcolor == solve_exact(inst).maxcolor

    def test_explicit_upper_bound(self):
        inst = IVCInstance.from_graph(path_graph(3), [2, 2, 2])
        res = solve_milp(inst, upper_bound=20)
        assert res.maxcolor == 4


class TestDecide:
    def test_yes_instance(self):
        inst = IVCInstance.from_graph(clique_graph(3), [2, 2, 2])
        c = milp_decide(inst, 6)
        assert c is not None and c.maxcolor <= 6

    def test_no_instance(self):
        inst = IVCInstance.from_graph(clique_graph(3), [2, 2, 2])
        assert milp_decide(inst, 5) is None

    def test_heavy_vertex_short_circuit(self):
        inst = IVCInstance.from_graph(path_graph(2), [9, 1])
        assert milp_decide(inst, 8) is None

    def test_negative_k(self):
        inst = IVCInstance.from_graph(path_graph(2), [1, 1])
        with pytest.raises(ValueError):
            milp_decide(inst, -2)

    def test_zero_weights(self):
        inst = IVCInstance.from_grid_2d(np.zeros((2, 2), dtype=int))
        assert milp_decide(inst, 0) is not None

    def test_threshold_agrees_with_bnb(self):
        from repro.core.exact.branch_and_bound import decide_coloring

        inst = random_2d_instances(count=1, seed=11, max_dim=4, max_w=5)[0]
        opt = solve_exact(inst).maxcolor
        assert milp_decide(inst, opt) is not None
        if opt > 0:
            assert milp_decide(inst, opt - 1) is None
            assert decide_coloring(inst, opt - 1) is None
