"""Tests for the LP-format export."""

import re

import numpy as np
import pytest

from repro.core.exact.lp_export import lp_text, write_lp
from repro.core.problem import IVCInstance
from repro.stencil.generic import clique_graph, path_graph


@pytest.fixture
def k3():
    return IVCInstance.from_graph(clique_graph(3), [2, 3, 4], name="k3")


class TestLPText:
    def test_structure(self, k3):
        text = lp_text(k3, upper_bound=9)
        assert text.startswith("\\ Interval vertex coloring MILP for k3")
        for section in ("Minimize", "Subject To", "Bounds", "Generals", "Binaries", "End"):
            assert f"\n{section}\n" in text or text.endswith(f"{section}\n")

    def test_variable_counts(self, k3):
        text = lp_text(k3, upper_bound=9)
        assert len(set(re.findall(r"\bs_\d+\b", text))) == 3
        assert len(set(re.findall(r"\by_\d+_\d+\b", text))) == 3  # K3 edges

    def test_zero_weight_vertices_excluded(self):
        inst = IVCInstance.from_grid_2d([[0, 5], [5, 0]])
        text = lp_text(inst, upper_bound=10)
        starts = set(re.findall(r"\bs_(\d+)\b", text))
        assert starts == {"1", "2"}
        # One edge between the two weighted vertices.
        assert len(set(re.findall(r"\by_\d+_\d+\b", text))) == 1

    def test_big_m_in_constraints(self, k3):
        text = lp_text(k3, upper_bound=9)
        assert "9 y_0_1" in text
        assert " 0 <= M <= 9" in text

    def test_default_upper_bound_is_heuristic(self, k3):
        text = lp_text(k3)
        assert "big-M 9" in text  # clique stacks to 9

    def test_bounds_reflect_weights(self, k3):
        text = lp_text(k3, upper_bound=9)
        assert " 0 <= s_0 <= 7" in text  # 9 - w(0)=2
        assert " 0 <= s_2 <= 5" in text  # 9 - w(2)=4


class TestWriteLP:
    def test_roundtrip_to_disk(self, tmp_path, k3):
        path = write_lp(k3, tmp_path / "model.lp", upper_bound=9)
        assert path.exists()
        assert path.read_text() == lp_text(k3, upper_bound=9)

    def test_solvable_formulation(self, tmp_path):
        # The exported model describes the same optimum the in-process MILP
        # finds — checked by reparsing the objective structure indirectly:
        # solve the same instance with scipy and assert consistency of the
        # chain optimum used in the file comments.
        from repro.core.exact.milp import solve_milp

        inst = IVCInstance.from_graph(path_graph(3), [4, 5, 6], name="chain")
        res = solve_milp(inst)
        assert res.maxcolor == 11
        text = lp_text(inst, upper_bound=res.maxcolor)
        assert "big-M 11" in text
