"""Tests for the first-fit engine."""

import numpy as np
import pytest

from repro.core.greedy_engine import (
    UNCOLORED,
    first_fit_start,
    first_fit_start_naive,
    greedy_color,
    greedy_color_partial,
    greedy_recolor_pass,
)
from repro.core.problem import IVCInstance
from repro.stencil.generic import clique_graph, cycle_graph, path_graph


class TestFirstFit:
    def test_no_neighbors(self):
        assert first_fit_start([], [], 3) == 0

    def test_zero_weight_fits_anywhere(self):
        assert first_fit_start([0], [100], 0) == 0

    def test_gap_before_first(self):
        assert first_fit_start([5], [8], 3) == 0
        assert first_fit_start([5], [8], 5) == 0

    def test_gap_too_small_before_first(self):
        assert first_fit_start([2], [5], 3) == 5

    def test_fits_in_middle_gap(self):
        assert first_fit_start([0, 7], [3, 9], 4) == 3

    def test_middle_gap_too_small(self):
        assert first_fit_start([0, 5], [3, 9], 4) == 9

    def test_unsorted_input(self):
        assert first_fit_start([7, 0], [9, 3], 4) == 3

    def test_overlapping_neighbor_intervals(self):
        # Neighbors may overlap each other (they need not be mutually adjacent).
        assert first_fit_start([0, 2], [5, 8], 2) == 8

    def test_duplicate_intervals(self):
        assert first_fit_start([0, 0], [4, 4], 1) == 4

    def test_exact_fit(self):
        assert first_fit_start([0, 5], [3, 9], 2) == 3

    @pytest.mark.parametrize("seed", range(10))
    def test_naive_matches_sorted(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 8))
        starts = rng.integers(0, 20, size=n).tolist()
        ends = [s + int(rng.integers(1, 6)) for s in starts]
        w = int(rng.integers(0, 5))
        assert first_fit_start(starts, ends, w) == first_fit_start_naive(starts, ends, w)

    def test_result_is_feasible_and_minimal(self):
        starts, ends = [2, 8, 14], [5, 11, 16]
        w = 3
        s = first_fit_start(starts, ends, w)
        assert all(s + w <= a or b <= s for a, b in zip(starts, ends))
        # Minimality: no smaller start works.
        for cand in range(s):
            if all(cand + w <= a or b <= cand for a, b in zip(starts, ends)):
                pytest.fail(f"{cand} < {s} also fits")


class TestGreedyColor:
    def test_clique_stacks(self):
        inst = IVCInstance.from_graph(clique_graph(4), [3, 1, 2, 4])
        c = greedy_color(inst, np.arange(4))
        assert c.is_valid()
        assert c.maxcolor == 10  # greedy on a clique is optimal

    def test_chain_order_dependence(self):
        inst = IVCInstance.from_graph(path_graph(3), [5, 5, 5])
        c = greedy_color(inst, np.array([0, 2, 1]))
        assert c.is_valid()
        assert c.starts.tolist() == [0, 5, 0]

    def test_requires_permutation(self):
        inst = IVCInstance.from_graph(path_graph(3), [1, 1, 1])
        with pytest.raises(ValueError, match="permutation"):
            greedy_color(inst, np.array([0, 0, 1]))
        with pytest.raises(ValueError, match="permutation"):
            greedy_color(inst, np.array([0, 1]))

    def test_zero_weight_vertices_get_zero(self):
        inst = IVCInstance.from_graph(path_graph(3), [4, 0, 4])
        c = greedy_color(inst, np.arange(3))
        assert c.starts[1] == 0
        assert c.is_valid()

    def test_validity_on_random_2d(self, small_2d):
        rng = np.random.default_rng(0)
        for _ in range(5):
            order = rng.permutation(small_2d.num_vertices)
            assert greedy_color(small_2d, order).is_valid()

    def test_validity_on_random_3d(self, small_3d):
        rng = np.random.default_rng(0)
        for _ in range(5):
            order = rng.permutation(small_3d.num_vertices)
            assert greedy_color(small_3d, order).is_valid()

    def test_deterministic(self, small_2d):
        order = np.arange(small_2d.num_vertices)
        a = greedy_color(small_2d, order)
        b = greedy_color(small_2d, order)
        assert np.array_equal(a.starts, b.starts)

    def test_algorithm_label(self, small_2d):
        c = greedy_color(small_2d, np.arange(small_2d.num_vertices), algorithm="lbl")
        assert c.algorithm == "lbl"


class TestGreedyColorPartial:
    def test_respects_existing_colors(self):
        inst = IVCInstance.from_graph(path_graph(3), [2, 2, 2])
        starts = np.array([0, UNCOLORED, UNCOLORED], dtype=np.int64)
        greedy_color_partial(inst, starts, [1, 2])
        assert starts[0] == 0  # untouched
        assert starts[1] == 2
        assert starts[2] == 0

    def test_skips_already_colored(self):
        inst = IVCInstance.from_graph(path_graph(2), [1, 1])
        starts = np.array([5, UNCOLORED], dtype=np.int64)
        greedy_color_partial(inst, starts, [0, 1])
        assert starts[0] == 5


class TestRecolorPass:
    def test_never_increases_starts(self, small_2d):
        base = greedy_color(small_2d, np.arange(small_2d.num_vertices))
        shifted = base.starts + 10  # still valid, just wasteful
        out = greedy_recolor_pass(small_2d, shifted)
        assert np.all(out <= shifted)
        from repro.core.coloring import Coloring

        assert Coloring(instance=small_2d, starts=out).is_valid()

    def test_fixed_point_of_tight_coloring(self):
        inst = IVCInstance.from_graph(clique_graph(3), [2, 2, 2])
        starts = np.array([0, 2, 4], dtype=np.int64)
        out = greedy_recolor_pass(inst, starts)
        assert np.array_equal(out, starts)

    def test_compacts_gaps(self):
        inst = IVCInstance.from_graph(path_graph(2), [2, 2])
        out = greedy_recolor_pass(inst, np.array([0, 50]))
        assert out.tolist() == [0, 2]

    def test_requires_full_coloring(self, small_2d):
        starts = np.full(small_2d.num_vertices, UNCOLORED, dtype=np.int64)
        with pytest.raises(ValueError, match="fully colored"):
            greedy_recolor_pass(small_2d, starts)

    def test_custom_order(self):
        inst = IVCInstance.from_graph(cycle_graph(4), [1, 1, 1, 1])
        starts = np.array([0, 1, 0, 1], dtype=np.int64)
        out = greedy_recolor_pass(inst, starts, order=np.array([3, 2, 1, 0]))
        from repro.core.coloring import Coloring

        assert Coloring(instance=inst, starts=out).is_valid()
