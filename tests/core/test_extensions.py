"""Tests for the extension features: iterated post-optimization and the
smallest-last ordering (related-work techniques the paper cites)."""

import numpy as np

from repro.core.algorithms.bipartite_decomposition import bipartite_decomposition
from repro.core.algorithms.post_opt import iterated_post_optimize, post_optimize
from repro.core.greedy_engine import greedy_color
from repro.core.orderings import smallest_last_order
from repro.core.problem import IVCInstance
from tests.conftest import random_2d_instances, random_3d_instances


class TestIteratedPostOptimize:
    def test_never_worse_than_single_pass(self):
        for inst in random_2d_instances(count=6):
            base = bipartite_decomposition(inst)
            single = post_optimize(base)
            iterated = iterated_post_optimize(base)
            assert iterated.is_valid()
            assert iterated.maxcolor <= single.maxcolor

    def test_reaches_fixed_point(self, small_2d):
        base = bipartite_decomposition(small_2d)
        out = iterated_post_optimize(base, max_passes=50)
        again = iterated_post_optimize(out, max_passes=1)
        assert np.array_equal(out.starts, again.starts)

    def test_label(self, small_2d):
        base = bipartite_decomposition(small_2d)
        assert iterated_post_optimize(base).algorithm == "BD+IP"

    def test_improves_on_some_instance(self):
        # At least one random instance where a second sweep helps.
        improved = 0
        for inst in random_2d_instances(count=10, seed=5, max_dim=7):
            base = bipartite_decomposition(inst)
            single = post_optimize(base)
            iterated = iterated_post_optimize(base)
            if iterated.maxcolor < single.maxcolor:
                improved += 1
        assert improved >= 1


class TestSmallestLast:
    def test_is_permutation(self, small_2d, small_3d):
        for inst in (small_2d, small_3d):
            order = smallest_last_order(inst)
            assert sorted(order.tolist()) == list(range(inst.num_vertices))

    def test_valid_greedy_coloring(self):
        for inst in random_2d_instances(count=4) + random_3d_instances(count=3):
            order = smallest_last_order(inst)
            assert greedy_color(inst, order, algorithm="SL").is_valid()

    def test_isolated_heavy_vertex_placed_early(self):
        # The heaviest, most connected vertex should be colored first.
        grid = np.ones((3, 3), dtype=int)
        grid[1, 1] = 50
        inst = IVCInstance.from_grid_2d(grid)
        order = smallest_last_order(inst)
        center = int(inst.geometry.vertex_id(1, 1))
        assert order[0] == center

    def test_deterministic(self, small_2d):
        a = smallest_last_order(small_2d)
        b = smallest_last_order(small_2d)
        assert np.array_equal(a, b)
