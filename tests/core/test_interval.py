"""Tests for interval arithmetic."""

import numpy as np

from repro.core.interval import (
    edge_overlaps,
    interval_str,
    intervals_overlap,
    overlap_matrix,
)


class TestIntervalsOverlap:
    def test_disjoint(self):
        assert not intervals_overlap(0, 3, 3, 2)  # touching half-open ends
        assert not intervals_overlap(5, 2, 0, 5)

    def test_overlapping(self):
        assert intervals_overlap(0, 3, 2, 2)
        assert intervals_overlap(2, 2, 0, 3)

    def test_containment(self):
        assert intervals_overlap(0, 10, 3, 2)

    def test_identical(self):
        assert intervals_overlap(4, 2, 4, 2)

    def test_empty_never_overlaps(self):
        assert not intervals_overlap(5, 0, 0, 100)
        assert not intervals_overlap(0, 100, 5, 0)
        assert not intervals_overlap(5, 0, 5, 0)

    def test_symmetry_exhaustive(self):
        for sa in range(5):
            for wa in range(3):
                for sb in range(5):
                    for wb in range(3):
                        assert intervals_overlap(sa, wa, sb, wb) == intervals_overlap(
                            sb, wb, sa, wa
                        )


class TestOverlapMatrix:
    def test_matches_scalar(self):
        starts = np.array([0, 2, 5, 5])
        weights = np.array([3, 3, 0, 2])
        mat = overlap_matrix(starts, weights)
        for a in range(4):
            for b in range(4):
                expected = intervals_overlap(
                    int(starts[a]), int(weights[a]), int(starts[b]), int(weights[b])
                )
                assert mat[a, b] == expected

    def test_symmetric(self, rng):
        starts = rng.integers(0, 10, size=12)
        weights = rng.integers(0, 4, size=12)
        mat = overlap_matrix(starts, weights)
        assert np.array_equal(mat, mat.T)


class TestEdgeOverlaps:
    def test_basic(self):
        starts = np.array([0, 2, 10])
        weights = np.array([3, 3, 1])
        edges = np.array([[0, 1], [0, 2], [1, 2]])
        mask = edge_overlaps(starts, weights, edges)
        assert mask.tolist() == [True, False, False]

    def test_empty_edges(self):
        mask = edge_overlaps(np.array([0]), np.array([1]), np.empty((0, 2), dtype=int))
        assert len(mask) == 0

    def test_zero_weight_edges_never_conflict(self):
        starts = np.array([0, 0])
        weights = np.array([0, 5])
        assert not edge_overlaps(starts, weights, np.array([[0, 1]]))[0]


def test_interval_str():
    assert interval_str(3, 4) == "[3, 7)"
    assert interval_str(0, 0) == "[0, 0)"
