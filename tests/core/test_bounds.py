"""Tests for the Section III lower bounds."""

import numpy as np
import pytest

from repro.core.bounds import (
    clique_block_bound,
    cycle_maxpair,
    cycle_minchain3,
    lower_bound,
    max_clique_bound_exact,
    max_weight_bound,
    maxpair_bound,
    odd_cycle_bound,
    odd_cycle_optimum,
)
from repro.core.problem import IVCInstance
from repro.stencil.generic import clique_graph, cycle_graph, path_graph


class TestSimpleBounds:
    def test_max_weight(self):
        inst = IVCInstance.from_grid_2d([[1, 7], [3, 2]])
        assert max_weight_bound(inst) == 7

    def test_maxpair_on_chain(self):
        inst = IVCInstance.from_graph(path_graph(4), [1, 5, 2, 6])
        assert maxpair_bound(inst) == 8  # 2 + 6

    def test_maxpair_no_edges_falls_back_to_weight(self):
        inst = IVCInstance.from_edges(3, [], [4, 9, 1])
        assert maxpair_bound(inst) == 9

    def test_maxpair_2d(self):
        inst = IVCInstance.from_grid_2d([[10, 1], [1, 10]])
        assert maxpair_bound(inst) == 20  # diagonal is an edge in 9-pt


class TestCliqueBounds:
    def test_2d_blocks(self):
        inst = IVCInstance.from_grid_2d([[1, 2, 0], [3, 4, 0]])
        assert clique_block_bound(inst) == 10

    def test_3d_blocks(self):
        grid = np.ones((2, 2, 2), dtype=int)
        inst = IVCInstance.from_grid_3d(grid)
        assert clique_block_bound(inst) == 8

    def test_requires_geometry(self):
        inst = IVCInstance.from_graph(path_graph(2), [1, 1])
        with pytest.raises(ValueError):
            clique_block_bound(inst)

    def test_matches_exact_clique_search_on_stencils(self, small_2d, small_3d):
        # Maximal cliques of a stencil are exactly the unit blocks.
        assert clique_block_bound(small_2d) == max_clique_bound_exact(small_2d)
        assert clique_block_bound(small_3d) == max_clique_bound_exact(small_3d)

    def test_exact_clique_on_clique_graph(self):
        inst = IVCInstance.from_graph(clique_graph(4), [1, 2, 3, 4])
        assert max_clique_bound_exact(inst) == 10

    def test_thin_grid_falls_back(self):
        inst = IVCInstance.from_grid_2d(np.array([[3, 4, 5]]))
        assert clique_block_bound(inst) == 9  # maxpair fallback


class TestCycleHelpers:
    def test_maxpair(self):
        assert cycle_maxpair([1, 2, 3]) == 5  # pairs 3, 5, 4

    def test_minchain3(self):
        assert cycle_minchain3([1, 2, 3, 4, 5]) == 6  # 1+2+3

    def test_minchain3_wraps(self):
        assert cycle_minchain3([1, 9, 9, 9, 1]) == 11  # 1+1+9 around the seam

    def test_optimum_formula(self):
        assert odd_cycle_optimum([10, 10, 10, 15, 10, 15, 10]) == 30

    def test_optimum_maxpair_dominates(self):
        assert odd_cycle_optimum([1, 20, 1]) == 22

    def test_optimum_rejects_even(self):
        with pytest.raises(ValueError):
            odd_cycle_optimum([1, 2, 3, 4])

    def test_optimum_rejects_short(self):
        with pytest.raises(ValueError):
            odd_cycle_optimum([5])

    def test_triangle_optimum_is_total(self):
        assert odd_cycle_optimum([2, 3, 4]) == 9


class TestOddCycleBound:
    def test_on_cycle_graph(self):
        inst = IVCInstance.from_graph(cycle_graph(5), [3, 3, 3, 3, 3])
        assert odd_cycle_bound(inst, max_len=5) == 9

    def test_no_odd_cycle(self):
        inst = IVCInstance.from_graph(path_graph(4), [5, 5, 5, 5])
        assert odd_cycle_bound(inst, max_len=7) == 0

    def test_figure2_instance(self):
        from repro.data.paper_instances import figure2_odd_cycle

        inst = figure2_odd_cycle()
        assert clique_block_bound(inst) == 25
        assert odd_cycle_bound(inst, max_len=7) == 30

    def test_triangle_in_stencil(self):
        grid = np.zeros((2, 2), dtype=int)
        grid[0, 0] = grid[0, 1] = grid[1, 0] = 4
        inst = IVCInstance.from_grid_2d(grid)
        assert odd_cycle_bound(inst, max_len=3) == 12


class TestCombinedLowerBound:
    def test_uses_clique_when_geometric(self):
        inst = IVCInstance.from_grid_2d([[5, 5], [5, 5]])
        assert lower_bound(inst) == 20

    def test_no_geometry_uses_maxpair(self):
        inst = IVCInstance.from_graph(path_graph(2), [3, 4])
        assert lower_bound(inst) == 7

    def test_odd_cycle_opt_in(self):
        from repro.data.paper_instances import figure2_odd_cycle

        inst = figure2_odd_cycle()
        assert lower_bound(inst) == 25
        assert lower_bound(inst, use_odd_cycles=True, odd_cycle_max_len=7) == 30

    def test_is_actually_a_lower_bound(self, small_2d, rng):
        from repro.core.exact.milp import solve_milp

        tiny_3d = IVCInstance.from_grid_3d(rng.integers(0, 6, size=(2, 2, 3)))
        for inst in (small_2d, tiny_3d):
            res = solve_milp(inst, time_limit=60.0)
            assert res.proven_optimal
            assert res.maxcolor >= lower_bound(inst)
