"""Tests for GKF and SGK."""

import numpy as np
import pytest

from repro.core.algorithms.clique_first import (
    greedy_largest_clique_first,
    smart_greedy_largest_clique_first,
    smart_greedy_weight_sorted,
)
from repro.core.bounds import lower_bound
from repro.core.problem import IVCInstance
from repro.stencil.generic import path_graph
from tests.conftest import random_2d_instances, random_3d_instances

ALL = (
    greedy_largest_clique_first,
    smart_greedy_largest_clique_first,
    smart_greedy_weight_sorted,
)


@pytest.mark.parametrize("algorithm", ALL)
class TestCommonProperties:
    def test_valid_on_random_2d(self, algorithm):
        for inst in random_2d_instances():
            c = algorithm(inst)
            assert c.is_valid(), inst.name
            assert c.maxcolor >= lower_bound(inst)

    def test_valid_on_random_3d(self, algorithm):
        for inst in random_3d_instances():
            assert algorithm(inst).is_valid(), inst.name

    def test_deterministic(self, algorithm, small_2d):
        assert np.array_equal(algorithm(small_2d).starts, algorithm(small_2d).starts)

    def test_requires_geometry(self, algorithm):
        inst = IVCInstance.from_graph(path_graph(3), [1, 1, 1])
        with pytest.raises(ValueError, match="geometry"):
            algorithm(inst)

    def test_all_vertices_colored_on_thin_grid(self, algorithm):
        # A 1-wide grid has no K4 blocks: the leftover path must still color.
        inst = IVCInstance.from_grid_2d(np.array([[2, 3, 2, 3]]))
        c = algorithm(inst)
        assert c.is_valid()
        assert np.all(c.starts >= 0)


class TestGKF:
    def test_heaviest_block_colored_tight(self):
        # One dominant K4 block: its four vertices should stack from 0.
        grid = np.zeros((3, 3), dtype=int)
        grid[:2, :2] = [[10, 11], [12, 13]]
        inst = IVCInstance.from_grid_2d(grid)
        c = greedy_largest_clique_first(inst)
        block = [0, 1, 3, 4]
        ends = sorted(int(c.starts[v] + inst.weights[v]) for v in block)
        assert ends[-1] == 46  # 10+11+12+13 stacked with no gaps

    def test_label(self, small_2d):
        assert greedy_largest_clique_first(small_2d).algorithm == "GKF"


class TestSGK:
    def test_2d_no_worse_than_weight_sorted_on_block(self):
        # SGK 2D tries all permutations, so on a single-block instance it is
        # at least as good as the weight-sorted rule.
        rng = np.random.default_rng(5)
        for _ in range(10):
            inst = IVCInstance.from_grid_2d(rng.integers(1, 15, size=(2, 2)))
            full = smart_greedy_largest_clique_first(inst).maxcolor
            ws = smart_greedy_weight_sorted(inst).maxcolor
            assert full <= ws

    def test_3d_uses_weight_sorted_rule(self, small_3d):
        assert (
            smart_greedy_largest_clique_first(small_3d).maxcolor
            == smart_greedy_weight_sorted(small_3d).maxcolor
        )

    def test_labels(self, small_2d):
        assert smart_greedy_largest_clique_first(small_2d).algorithm == "SGK"
        assert smart_greedy_weight_sorted(small_2d).algorithm == "SGK-ws"

    def test_single_block_optimal(self):
        # On a lone K4, stacking is optimal regardless of permutation; SGK
        # must reach the clique bound exactly.
        inst = IVCInstance.from_grid_2d([[4, 7], [2, 9]])
        c = smart_greedy_largest_clique_first(inst)
        assert c.maxcolor == 22
