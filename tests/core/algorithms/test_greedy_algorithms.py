"""Tests for GLL, GZO, GLF."""

import numpy as np
import pytest

from repro.core.algorithms.greedy import (
    greedy_largest_first,
    greedy_line_by_line,
    greedy_zorder,
)
from repro.core.bounds import lower_bound
from repro.core.problem import IVCInstance
from tests.conftest import random_2d_instances, random_3d_instances

ALL = (greedy_line_by_line, greedy_zorder, greedy_largest_first)


@pytest.mark.parametrize("algorithm", ALL)
class TestCommonProperties:
    def test_valid_on_random_2d(self, algorithm):
        for inst in random_2d_instances():
            c = algorithm(inst)
            assert c.is_valid(), inst.name
            assert c.maxcolor >= lower_bound(inst)

    def test_valid_on_random_3d(self, algorithm):
        for inst in random_3d_instances():
            c = algorithm(inst)
            assert c.is_valid(), inst.name

    def test_deterministic(self, algorithm, small_2d):
        assert np.array_equal(algorithm(small_2d).starts, algorithm(small_2d).starts)

    def test_all_zero_weights(self, algorithm):
        inst = IVCInstance.from_grid_2d(np.zeros((3, 3), dtype=int))
        c = algorithm(inst)
        assert c.maxcolor == 0

    def test_uniform_weights_hit_clique_bound_2x2(self, algorithm):
        inst = IVCInstance.from_grid_2d(np.full((2, 2), 5))
        assert algorithm(inst).maxcolor == 20  # K4, any greedy is optimal


class TestLabels:
    def test_labels(self, small_2d):
        assert greedy_line_by_line(small_2d).algorithm == "GLL"
        assert greedy_zorder(small_2d).algorithm == "GZO"
        assert greedy_largest_first(small_2d).algorithm == "GLF"


class TestGLF:
    def test_heaviest_vertex_starts_at_zero(self, small_2d):
        c = greedy_largest_first(small_2d)
        heaviest = int(np.argmax(small_2d.weights))
        assert c.starts[heaviest] == 0

    def test_single_heavy_among_light(self):
        grid = np.ones((3, 3), dtype=int)
        grid[1, 1] = 100
        inst = IVCInstance.from_grid_2d(grid)
        c = greedy_largest_first(inst)
        assert c.starts[inst.geometry.vertex_id(1, 1)] == 0
        assert c.is_valid()


class TestGLLStructure:
    def test_first_row_matches_chain_greedy(self):
        # GLL colors the first row before anything else, so within it the
        # result equals greedy on a chain.
        grid = np.zeros((4, 2), dtype=int)
        grid[:, 0] = [3, 4, 5, 6]
        grid[:, 1] = 1
        inst = IVCInstance.from_grid_2d(grid)
        c = greedy_line_by_line(inst)
        row = inst.geometry.row_ids(0)
        # First fit along the chain: [0,3), then [3,7); the 5-wide interval
        # does not fit under [3,7) so it goes to [7,12); the 6-wide one fits
        # at 0 against its single colored neighbor [7,12).
        assert c.starts[row.tolist()].tolist() == [0, 3, 7, 0]
