"""Tests for the local-search refinement."""

import numpy as np
import pytest

from repro.core.algorithms.local_search import local_search
from repro.core.algorithms.registry import color_with
from repro.core.bounds import lower_bound
from repro.core.problem import IVCInstance
from repro.stencil.generic import cycle_graph
from tests.conftest import random_2d_instances, random_3d_instances


class TestLocalSearch:
    def test_never_worse_and_valid(self):
        for inst in random_2d_instances(count=6) + random_3d_instances(count=3):
            base = color_with(inst, "GLL")
            refined = local_search(base, max_rounds=5)
            assert refined.is_valid()
            assert refined.maxcolor <= base.maxcolor
            assert refined.maxcolor >= lower_bound(inst)

    def test_improves_weak_colorings(self):
        improved = 0
        for inst in random_2d_instances(count=8, seed=11, max_dim=8):
            base = color_with(inst, "GZO")
            refined = local_search(base, max_rounds=10)
            if refined.maxcolor < base.maxcolor:
                improved += 1
        assert improved >= 4  # local search regularly helps weak orders

    def test_deterministic(self, small_2d):
        base = color_with(small_2d, "GLL")
        a = local_search(base, seed=3)
        b = local_search(base, seed=3)
        assert np.array_equal(a.starts, b.starts)

    def test_label(self, small_2d):
        refined = local_search(color_with(small_2d, "BD"))
        assert refined.algorithm == "BD+LS"

    def test_rejects_invalid_input(self, small_2d):
        from repro.core.coloring import Coloring

        bad = Coloring(
            instance=small_2d, starts=np.zeros(small_2d.num_vertices, dtype=np.int64)
        )
        if not bad.is_valid():
            with pytest.raises(ValueError):
                local_search(bad)

    def test_works_on_generic_graphs(self):
        inst = IVCInstance.from_graph(cycle_graph(7), [3, 1, 4, 1, 5, 9, 2])
        base = color_with(inst, "GLF")
        refined = local_search(base, max_rounds=10)
        assert refined.is_valid()
        assert refined.maxcolor <= base.maxcolor

    def test_closes_most_of_the_gap_to_optimal(self):
        from repro.core.exact.branch_and_bound import solve_exact

        base_total = refined_total = opt_total = 0
        hits = 0
        for inst in random_2d_instances(count=6, seed=2, max_dim=6):
            base = color_with(inst, "GZO")
            refined = local_search(base, max_rounds=20)
            opt = solve_exact(inst).maxcolor
            base_total += base.maxcolor
            refined_total += refined.maxcolor
            opt_total += opt
            hits += refined.maxcolor == opt
        # Local search recovers well over half of GZO's gap to optimal and
        # reaches the exact optimum on at least one instance.
        assert refined_total - opt_total < 0.5 * (base_total - opt_total)
        assert hits >= 1
