"""Tests for the algorithm registry."""

import numpy as np
import pytest

from repro.core.algorithms.registry import (
    ALGORITHMS,
    EXTENDED_ALGORITHMS,
    available_algorithms,
    color_with,
)
from repro.core.problem import IVCInstance
from repro.stencil.generic import path_graph


class TestRegistry:
    def test_all_paper_algorithms_present(self):
        assert set(ALGORITHMS) == {"GLL", "GZO", "GLF", "GKF", "SGK", "BD", "BDP"}

    def test_color_with_runs_everything(self, small_2d, small_3d):
        for inst in (small_2d, small_3d):
            for name in ALGORITHMS:
                c = color_with(inst, name)
                assert c.is_valid()
                assert c.algorithm == name
                assert c.elapsed >= 0

    def test_unknown_name_raises(self, small_2d):
        with pytest.raises(KeyError, match="unknown algorithm"):
            color_with(small_2d, "NOPE")

    def test_available_on_stencil(self, small_2d):
        assert available_algorithms(small_2d) == list(ALGORITHMS)

    def test_available_on_generic_graph(self):
        inst = IVCInstance.from_graph(path_graph(3), [1, 1, 1])
        assert available_algorithms(inst) == ["GLL", "GLF"]
        for name in available_algorithms(inst):
            assert color_with(inst, name).is_valid()

    def test_timing_recorded(self, small_2d):
        c = color_with(small_2d, "SGK")
        assert c.elapsed > 0


class TestExtendedRegistry:
    def test_superset_of_paper_algorithms(self):
        assert set(ALGORITHMS) < set(EXTENDED_ALGORITHMS)
        assert {"GSL", "GLF+P", "BD+IP", "SGK-ws"} <= set(EXTENDED_ALGORITHMS)

    def test_all_extensions_valid(self, small_2d, small_3d):
        for inst in (small_2d, small_3d):
            for name in ("GSL", "GLF+P", "BD+IP", "SGK-ws"):
                c = color_with(inst, name)
                assert c.is_valid(), name
                assert c.algorithm == name

    def test_glf_post_never_worse(self, small_2d):
        assert color_with(small_2d, "GLF+P").maxcolor <= color_with(small_2d, "GLF").maxcolor

    def test_bd_iterated_never_worse_than_bdp(self, small_2d, small_3d):
        # BD+IP's first sweep is exactly BDP's, so it can only improve on it.
        for inst in (small_2d, small_3d):
            assert color_with(inst, "BD+IP").maxcolor <= color_with(inst, "BDP").maxcolor
