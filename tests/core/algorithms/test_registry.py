"""Tests for the algorithm registry."""

import numpy as np
import pytest

from repro.core.algorithms.registry import (
    ALGORITHMS,
    EXTENDED_ALGORITHMS,
    REGISTRY,
    AlgorithmSpec,
    Registry,
    UnknownAlgorithmError,
    available_algorithms,
    color_with,
)
from repro.core.problem import IVCInstance
from repro.stencil.generic import path_graph


class TestRegistry:
    def test_all_paper_algorithms_present(self):
        assert set(ALGORITHMS) == {"GLL", "GZO", "GLF", "GKF", "SGK", "BD", "BDP"}

    def test_color_with_runs_everything(self, small_2d, small_3d):
        for inst in (small_2d, small_3d):
            for name in ALGORITHMS:
                c = color_with(inst, name)
                assert c.is_valid()
                assert c.algorithm == name
                assert c.elapsed >= 0

    def test_unknown_name_raises(self, small_2d):
        with pytest.raises(KeyError, match="unknown algorithm"):
            color_with(small_2d, "NOPE")

    def test_available_on_stencil(self, small_2d):
        assert available_algorithms(small_2d) == list(ALGORITHMS)

    def test_available_on_generic_graph(self):
        inst = IVCInstance.from_graph(path_graph(3), [1, 1, 1])
        assert available_algorithms(inst) == ["GLL", "GLF"]
        for name in available_algorithms(inst):
            assert color_with(inst, name).is_valid()

    def test_timing_recorded(self, small_2d):
        c = color_with(small_2d, "SGK")
        assert c.elapsed > 0


class TestAlgorithmSpec:
    def test_specs_carry_capabilities(self):
        spec = REGISTRY.get("BDP")
        assert spec.name == "BDP"
        assert spec.needs_geometry
        assert spec.supported_dims == (2, 3)
        assert not spec.is_extension
        assert spec.description

    def test_geometry_free_specs(self, small_2d):
        for name in ("GLL", "GLF", "GSL", "GLF+LS"):
            assert not REGISTRY.get(name).needs_geometry

    def test_supports(self, small_2d, small_3d):
        bare = IVCInstance.from_graph(path_graph(3), [1, 1, 1])
        assert REGISTRY.get("GLL").supports(bare)
        assert not REGISTRY.get("BDP").supports(bare)
        assert REGISTRY.get("BDP").supports(small_2d)
        assert REGISTRY.get("BDP").supports(small_3d)
        only_2d = AlgorithmSpec("X2", lambda i: None, supported_dims=(2,))
        assert only_2d.supports(small_2d)
        assert not only_2d.supports(small_3d)


class TestTypedRegistry:
    def test_unknown_name_typed_error_with_suggestion(self, small_2d):
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            color_with(small_2d, "GLFF")
        err = excinfo.value
        assert isinstance(err, KeyError)  # back-compat with except KeyError
        assert err.name == "GLFF"
        assert err.suggestion == "GLF"
        assert "did you mean 'GLF'" in str(err)

    def test_unknown_name_without_close_match(self):
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            REGISTRY.get("completely-unrelated")
        assert excinfo.value.suggestion is None
        assert "choose from" in str(excinfo.value)

    def test_register_refuses_silent_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            REGISTRY.register(AlgorithmSpec("GLF", lambda i: None))

    def test_register_and_unregister(self, small_2d):
        fresh = Registry()
        spec = AlgorithmSpec(
            "CONST", lambda inst: color_with(inst, "GLF"),
            needs_geometry=False, is_extension=True,
        )
        fresh.register(spec)
        assert "CONST" in fresh and len(fresh) == 1
        assert fresh.get("CONST") is spec
        assert fresh.unregister("CONST") is spec
        assert "CONST" not in fresh

    def test_select_filters_by_capability(self, small_2d):
        bare = IVCInstance.from_graph(path_graph(3), [1, 1, 1])
        assert REGISTRY.select(small_2d) == list(ALGORITHMS)
        assert REGISTRY.select(bare) == ["GLL", "GLF"]
        extended = REGISTRY.select(bare, include_extensions=True)
        assert set(extended) == {"GLL", "GLF", "GSL", "GLF+LS"}

    def test_names_and_specs(self):
        assert REGISTRY.names(include_extensions=False) == list(ALGORITHMS)
        assert REGISTRY.names() == list(EXTENDED_ALGORITHMS)
        assert [s.name for s in REGISTRY.specs()] == REGISTRY.names()


class TestBackCompatViews:
    def test_views_are_mappings(self):
        assert ALGORITHMS["GLF"] is REGISTRY.get("GLF").fn
        assert dict(EXTENDED_ALGORITHMS)  # Mapping protocol: iteration+getitem
        assert len(EXTENDED_ALGORITHMS) == len(REGISTRY)
        assert len(ALGORITHMS) == 7

    def test_views_are_live(self):
        REGISTRY.register(
            AlgorithmSpec("TMP", lambda i: None, is_extension=True)
        )
        try:
            assert "TMP" in EXTENDED_ALGORITHMS
            assert "TMP" not in ALGORITHMS
        finally:
            REGISTRY.unregister("TMP")
        assert "TMP" not in EXTENDED_ALGORITHMS

    def test_view_miss_raises_typed_error(self):
        with pytest.raises(UnknownAlgorithmError):
            EXTENDED_ALGORITHMS["NOPE"]
        with pytest.raises(KeyError):
            ALGORITHMS["GSL"]  # extension not visible in the paper view

    def test_available_algorithms_extensions_flag(self, small_2d):
        full = available_algorithms(small_2d, include_extensions=True)
        assert set(full) == set(EXTENDED_ALGORITHMS)


class TestExtendedRegistry:
    def test_superset_of_paper_algorithms(self):
        assert set(ALGORITHMS) < set(EXTENDED_ALGORITHMS)
        assert {"GSL", "GLF+P", "BD+IP", "SGK-ws"} <= set(EXTENDED_ALGORITHMS)

    def test_all_extensions_valid(self, small_2d, small_3d):
        for inst in (small_2d, small_3d):
            for name in ("GSL", "GLF+P", "BD+IP", "SGK-ws"):
                c = color_with(inst, name)
                assert c.is_valid(), name
                assert c.algorithm == name

    def test_glf_post_never_worse(self, small_2d):
        assert color_with(small_2d, "GLF+P").maxcolor <= color_with(small_2d, "GLF").maxcolor

    def test_bd_iterated_never_worse_than_bdp(self, small_2d, small_3d):
        # BD+IP's first sweep is exactly BDP's, so it can only improve on it.
        for inst in (small_2d, small_3d):
            assert color_with(inst, "BD+IP").maxcolor <= color_with(inst, "BDP").maxcolor
