"""Tests for the post-optimization sweep."""

import numpy as np
import pytest

from repro.core.algorithms.bipartite_decomposition import bipartite_decomposition
from repro.core.algorithms.greedy import greedy_line_by_line
from repro.core.algorithms.post_opt import bdp_recolor_order, post_optimize
from repro.core.problem import IVCInstance
from repro.stencil.generic import path_graph
from tests.conftest import random_2d_instances, random_3d_instances


class TestRecolorOrder:
    def test_is_permutation(self, small_2d, small_3d):
        for inst in (small_2d, small_3d):
            coloring = bipartite_decomposition(inst)
            order = bdp_recolor_order(inst, coloring.starts)
            assert sorted(order.tolist()) == list(range(inst.num_vertices))

    def test_heaviest_block_first(self):
        grid = np.zeros((2, 4), dtype=int)
        grid[:, 2:] = 50  # rightmost block is by far the heaviest
        inst = IVCInstance.from_grid_2d(grid)
        coloring = bipartite_decomposition(inst)
        order = bdp_recolor_order(inst, coloring.starts)
        heavy = set(inst.geometry.vertex_id([0, 0, 1, 1], [2, 3, 2, 3]).tolist())
        assert set(order[:4].tolist()) == heavy

    def test_within_block_sorted_by_start(self):
        inst = IVCInstance.from_grid_2d([[3, 3], [3, 3]])
        starts = np.array([9, 0, 3, 6])
        order = bdp_recolor_order(inst, starts)
        assert starts[order].tolist() == [0, 3, 6, 9]

    def test_requires_geometry(self):
        inst = IVCInstance.from_graph(path_graph(2), [1, 1])
        with pytest.raises(ValueError, match="geometry"):
            bdp_recolor_order(inst, np.zeros(2, dtype=np.int64))

    def test_thin_grid_identity(self):
        inst = IVCInstance.from_grid_2d(np.array([[1, 2, 3]]))
        order = bdp_recolor_order(inst, np.zeros(3, dtype=np.int64))
        assert sorted(order.tolist()) == [0, 1, 2]


class TestPostOptimize:
    def test_never_increases_maxcolor(self):
        for inst in random_2d_instances() + random_3d_instances():
            base = greedy_line_by_line(inst)
            improved = post_optimize(base)
            assert improved.is_valid()
            assert improved.maxcolor <= base.maxcolor

    def test_label_suffix(self, small_2d):
        base = greedy_line_by_line(small_2d)
        assert post_optimize(base).algorithm == "GLL+P"
        assert post_optimize(base, suffix="!").algorithm == "GLL!"

    def test_improves_wasteful_coloring(self):
        inst = IVCInstance.from_grid_2d([[2, 2], [2, 2]])
        from repro.core.coloring import Coloring

        wasteful = Coloring(
            instance=inst, starts=np.array([0, 10, 20, 30]), algorithm="waste"
        )
        improved = post_optimize(wasteful)
        assert improved.maxcolor == 8  # compacted to the clique optimum
