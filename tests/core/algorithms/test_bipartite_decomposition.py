"""Tests for Bipartite Decomposition (BD) and its approximation guarantees."""

import numpy as np
import pytest

from repro.core.algorithms.bipartite_decomposition import (
    bd_with_bound,
    bipartite_decomposition,
    bipartite_decomposition_post,
    chain_color,
)
from repro.core.bounds import lower_bound
from repro.core.problem import IVCInstance
from repro.stencil.generic import path_graph
from tests.conftest import random_2d_instances, random_3d_instances


class TestChainColor:
    def test_empty(self):
        starts, rc = chain_color(np.array([], dtype=int))
        assert len(starts) == 0 and rc == 0

    def test_single(self):
        starts, rc = chain_color(np.array([7]))
        assert starts.tolist() == [0] and rc == 7

    def test_pair(self):
        starts, rc = chain_color(np.array([3, 5]))
        assert rc == 8
        assert starts.tolist() == [0, 3]

    def test_alternation_valid(self):
        w = np.array([4, 2, 7, 1, 3])
        starts, rc = chain_color(w)
        ends = starts + w
        for a in range(4):
            assert ends[a] <= starts[a + 1] or ends[a + 1] <= starts[a]
        assert rc == 9  # 2 + 7

    def test_rc_is_chain_optimum(self):
        # The chain optimum equals the max consecutive pair (bipartite bound).
        w = np.array([5, 5, 5, 5])
        _, rc = chain_color(w)
        assert rc == 10

    def test_zero_weights(self):
        starts, rc = chain_color(np.array([0, 0, 0]))
        assert rc == 0
        assert starts.tolist() == [0, 0, 0]

    def test_rc_at_least_max_weight(self):
        _, rc = chain_color(np.array([9, 0]))
        assert rc == 9


class TestBD2D:
    def test_valid_and_bounded(self):
        for inst in random_2d_instances():
            coloring, rc = bd_with_bound(inst)
            assert coloring.is_valid(), inst.name
            assert coloring.maxcolor <= 2 * rc
            assert coloring.maxcolor >= lower_bound(inst)

    def test_rc_is_lower_bound_2d(self):
        # RC is the optimum of a subgraph, hence a true lower bound.
        from repro.core.exact.milp import solve_milp

        for inst in random_2d_instances(count=3, max_dim=5, max_w=6):
            _, rc = bd_with_bound(inst)
            res = solve_milp(inst, time_limit=30.0)
            assert res.proven_optimal
            assert rc <= res.maxcolor

    def test_two_approximation_certified(self):
        from repro.core.exact.milp import solve_milp

        for inst in random_2d_instances(count=4, max_dim=5, max_w=8):
            coloring = bipartite_decomposition(inst)
            res = solve_milp(inst, time_limit=30.0)
            assert res.proven_optimal
            assert coloring.maxcolor <= 2 * res.maxcolor

    def test_row_banding(self):
        # Even rows use [0, RC); odd rows use [RC, 2RC).
        inst = random_2d_instances(count=1, seed=9)[0]
        coloring, rc = bd_with_bound(inst)
        geo = inst.geometry
        i, j = geo.coords(np.arange(inst.num_vertices))
        ends = coloring.ends
        even = j % 2 == 0
        assert np.all(ends[even] <= rc)
        assert np.all(coloring.starts[~even] >= rc)

    def test_label(self, small_2d):
        assert bipartite_decomposition(small_2d).algorithm == "BD"


class TestBD3D:
    def test_valid_on_random_3d(self):
        for inst in random_3d_instances():
            coloring, lc = bd_with_bound(inst)
            assert coloring.is_valid(), inst.name
            assert coloring.maxcolor <= 2 * lc

    def test_four_approximation_certified(self):
        from repro.core.exact.milp import solve_milp

        for inst in random_3d_instances(count=3, max_dim=3, max_w=6):
            coloring = bipartite_decomposition(inst)
            res = solve_milp(inst, time_limit=60.0)
            assert res.proven_optimal
            assert coloring.maxcolor <= 4 * res.maxcolor

    def test_layer_banding(self):
        inst = random_3d_instances(count=1, seed=4)[0]
        coloring, lc = bd_with_bound(inst)
        geo = inst.geometry
        _i, _j, k = geo.coords(np.arange(inst.num_vertices))
        even = k % 2 == 0
        assert np.all(coloring.ends[even] <= lc)
        assert np.all(coloring.starts[~even] >= lc)


class TestBDBestAxis:
    def test_never_worse_than_bd(self):
        from repro.core.algorithms.bipartite_decomposition import (
            bipartite_decomposition_best_axis,
        )

        for inst in random_2d_instances(count=8):
            best = bipartite_decomposition_best_axis(inst)
            assert best.is_valid()
            assert best.maxcolor <= bipartite_decomposition(inst).maxcolor

    def test_picks_the_better_orientation(self):
        from repro.core.algorithms.bipartite_decomposition import (
            bipartite_decomposition_best_axis,
        )

        # Heavy vertical pair: row-chains along x see the pair split across
        # rows (bad), column-chains see it inside one chain (good).
        grid = np.zeros((2, 4), dtype=int)
        grid[0, 0] = grid[1, 0] = 10
        inst = IVCInstance.from_grid_2d(grid)
        transposed = IVCInstance.from_grid_2d(grid.T)
        direct = bipartite_decomposition(inst).maxcolor
        swapped = bipartite_decomposition(transposed).maxcolor
        best = bipartite_decomposition_best_axis(inst)
        assert best.maxcolor == min(direct, swapped)

    def test_3d_falls_back_to_bd(self, small_3d):
        from repro.core.algorithms.bipartite_decomposition import (
            bipartite_decomposition_best_axis,
        )

        assert (
            bipartite_decomposition_best_axis(small_3d).maxcolor
            == bipartite_decomposition(small_3d).maxcolor
        )

    def test_registered(self, small_2d):
        from repro.core.algorithms.registry import color_with

        c = color_with(small_2d, "BD-ax")
        assert c.is_valid() and c.algorithm == "BD-ax"


class TestBDP:
    def test_never_worse_than_bd(self):
        for inst in random_2d_instances() + random_3d_instances():
            bd = bipartite_decomposition(inst)
            bdp = bipartite_decomposition_post(inst)
            assert bdp.is_valid()
            assert bdp.maxcolor <= bd.maxcolor

    def test_keeps_approximation_guarantee(self):
        for inst in random_2d_instances(count=4):
            _, rc = bd_with_bound(inst)
            assert bipartite_decomposition_post(inst).maxcolor <= 2 * rc

    def test_label(self, small_2d):
        assert bipartite_decomposition_post(small_2d).algorithm == "BDP"

    def test_requires_geometry(self):
        inst = IVCInstance.from_graph(path_graph(3), [1, 1, 1])
        with pytest.raises(ValueError):
            bipartite_decomposition(inst)
