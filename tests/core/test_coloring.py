"""Tests for the Coloring result type."""

import numpy as np
import pytest

from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.stencil.generic import path_graph


@pytest.fixture
def chain3():
    return IVCInstance.from_graph(path_graph(3), [2, 3, 2])


class TestConstruction:
    def test_wrong_length_rejected(self, chain3):
        with pytest.raises(ValueError, match="expected 3 starts"):
            Coloring(instance=chain3, starts=np.array([0, 1]))

    def test_negative_start_rejected(self, chain3):
        with pytest.raises(ValueError, match="non-negative"):
            Coloring(instance=chain3, starts=np.array([0, -1, 0]))

    def test_starts_coerced(self, chain3):
        c = Coloring(instance=chain3, starts=[0, 2, 0])
        assert c.starts.dtype == np.int64


class TestQuantities:
    def test_maxcolor(self, chain3):
        c = Coloring(instance=chain3, starts=[0, 2, 0])
        assert c.maxcolor == 5
        assert c.ends.tolist() == [2, 5, 2]

    def test_maxcolor_empty_instance(self):
        inst = IVCInstance.from_edges(0, [], [])
        c = Coloring(instance=inst, starts=np.empty(0, dtype=int))
        assert c.maxcolor == 0

    def test_interval_of(self, chain3):
        c = Coloring(instance=chain3, starts=[0, 2, 0])
        assert c.interval_of(1) == (2, 5)


class TestValidation:
    def test_valid_coloring(self, chain3):
        c = Coloring(instance=chain3, starts=[0, 2, 0])
        assert c.is_valid()
        assert len(c.violations()) == 0
        assert c.check() is c

    def test_invalid_coloring_detected(self, chain3):
        c = Coloring(instance=chain3, starts=[0, 1, 0])
        assert not c.is_valid()
        bad = c.violations()
        assert [0, 1] in bad.tolist()

    def test_check_raises_with_edges(self, chain3):
        c = Coloring(instance=chain3, starts=[0, 0, 0])
        with pytest.raises(ValueError, match="conflicting edges"):
            c.check()

    def test_zero_weight_overlap_is_fine(self):
        inst = IVCInstance.from_graph(path_graph(2), [0, 5])
        c = Coloring(instance=inst, starts=[0, 0])
        assert c.is_valid()

    def test_grid_validation(self):
        inst = IVCInstance.from_grid_2d([[1, 1], [1, 1]])
        # All four vertices are mutually adjacent; same start is invalid.
        c = Coloring(instance=inst, starts=[0, 0, 0, 0])
        assert len(c.violations()) == 6


class TestUtility:
    def test_with_algorithm(self, chain3):
        c = Coloring(instance=chain3, starts=[0, 2, 0]).with_algorithm("X", elapsed=1.5)
        assert c.algorithm == "X"
        assert c.elapsed == 1.5
        assert c.maxcolor == 5

    def test_as_grid(self):
        inst = IVCInstance.from_grid_2d([[1, 2], [2, 1]])
        c = Coloring(instance=inst, starts=[0, 1, 3, 5])
        assert c.as_grid().shape == (2, 2)
        assert c.as_grid()[1, 0] == 3

    def test_as_grid_requires_geometry(self, chain3):
        c = Coloring(instance=chain3, starts=[0, 2, 0])
        with pytest.raises(ValueError, match="no stencil geometry"):
            c.as_grid()
