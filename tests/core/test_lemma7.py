"""Tests for the Lemma 7 greedy upper bound."""

import numpy as np
import pytest

from repro.core.bounds import greedy_upper_bound, greedy_vertex_upper_bound
from repro.core.greedy_engine import greedy_color
from repro.core.problem import IVCInstance
from repro.stencil.generic import clique_graph, path_graph, star_graph
from tests.conftest import random_2d_instances, random_3d_instances


class TestFormula:
    def test_isolated_vertex(self):
        inst = IVCInstance.from_edges(1, [], [7])
        assert greedy_upper_bound(inst) == 7

    def test_single_edge(self):
        # v with weight 3 next to weight 5: bound = 5 + 2*3 - 1 = 10.
        inst = IVCInstance.from_graph(path_graph(2), [3, 5])
        per_vertex = greedy_vertex_upper_bound(inst)
        assert per_vertex[0] == 10
        assert per_vertex[1] == 3 + 2 * 5 - 1

    def test_zero_weight_vertex_bound_zero(self):
        inst = IVCInstance.from_graph(path_graph(2), [0, 5])
        assert greedy_vertex_upper_bound(inst)[0] == 0

    def test_star_center(self):
        inst = IVCInstance.from_graph(star_graph(3), [2, 1, 1, 1])
        # center: neighbors sum 3, deg 3 -> 3 + 4*2 - 3 = 8.
        assert greedy_vertex_upper_bound(inst)[0] == 8

    def test_empty_instance(self):
        inst = IVCInstance.from_edges(0, [], [])
        assert greedy_upper_bound(inst) == 0


class TestLemma7Holds:
    """Every greedy coloring respects the per-vertex Lemma 7 bound."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_orders_respect_bound(self, seed):
        rng = np.random.default_rng(seed)
        for inst in random_2d_instances(count=3, seed=seed) + random_3d_instances(
            count=2, seed=seed
        ):
            per_vertex = greedy_vertex_upper_bound(inst)
            order = rng.permutation(inst.num_vertices)
            coloring = greedy_color(inst, order)
            ends = coloring.ends
            positive = inst.weights > 0
            assert np.all(ends[positive] <= per_vertex[positive])

    def test_bound_tight_on_adversarial_instance(self):
        # A clique colors with exactly the sum of weights; Lemma 7's bound on
        # the last vertex exceeds or equals that.
        inst = IVCInstance.from_graph(clique_graph(4), [3, 3, 3, 3])
        coloring = greedy_color(inst, np.arange(4))
        assert coloring.maxcolor == 12
        assert greedy_upper_bound(inst) >= 12

    def test_upper_bound_at_least_trivial(self, small_2d):
        # The Lemma 7 bound can never undercut any actual greedy run.
        coloring = greedy_color(small_2d, np.arange(small_2d.num_vertices))
        assert greedy_upper_bound(small_2d) >= coloring.maxcolor
