"""Tests for vertex orderings."""

import numpy as np
import pytest

from repro.core.orderings import (
    identity_order,
    largest_first_order,
    line_by_line_order,
    random_order,
    zorder_order,
)
from repro.core.problem import IVCInstance
from repro.stencil.generic import path_graph


class TestOrders:
    def test_identity(self):
        assert identity_order(4).tolist() == [0, 1, 2, 3]

    def test_line_by_line_permutation(self, small_2d, small_3d):
        for inst in (small_2d, small_3d):
            order = line_by_line_order(inst)
            assert sorted(order.tolist()) == list(range(inst.num_vertices))

    def test_line_by_line_generic_falls_back(self):
        inst = IVCInstance.from_graph(path_graph(4), [1, 1, 1, 1])
        assert line_by_line_order(inst).tolist() == [0, 1, 2, 3]

    def test_zorder_permutation(self, small_2d, small_3d):
        for inst in (small_2d, small_3d):
            order = zorder_order(inst)
            assert sorted(order.tolist()) == list(range(inst.num_vertices))

    def test_zorder_requires_geometry(self):
        inst = IVCInstance.from_graph(path_graph(3), [1, 1, 1])
        with pytest.raises(ValueError, match="geometry"):
            zorder_order(inst)

    def test_largest_first_sorted(self, small_2d):
        order = largest_first_order(small_2d)
        w = small_2d.weights[order]
        assert np.all(w[:-1] >= w[1:])

    def test_largest_first_stable_ties(self):
        inst = IVCInstance.from_grid_2d([[5, 5], [5, 9]])
        order = largest_first_order(inst)
        assert order.tolist() == [3, 0, 1, 2]

    def test_random_order_deterministic_per_seed(self, small_2d):
        a = random_order(small_2d, seed=3)
        b = random_order(small_2d, seed=3)
        c = random_order(small_2d, seed=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert sorted(a.tolist()) == list(range(small_2d.num_vertices))
