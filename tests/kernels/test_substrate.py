"""Substrate cache behavior: sharing, LRU bounds, and engine-pool safety."""

import numpy as np

from repro.core.problem import IVCInstance
from repro.engine import run_grid
from repro.kernels.substrate import (
    CACHE_SIZE,
    cache_sizes,
    clear_caches,
    get_substrate,
    shared_geometry_2d,
    shared_geometry_3d,
    substrate_stats,
)
from repro.stencil.grid2d import StencilGrid2D
from repro.stencil.grid3d import StencilGrid3D


def _weights(shape, seed=0):
    return np.random.default_rng(seed).integers(1, 50, size=shape)


def test_shared_geometry_is_one_object_per_shape():
    assert shared_geometry_2d(4, 5) is shared_geometry_2d(4, 5)
    assert shared_geometry_3d(2, 3, 4) is shared_geometry_3d(2, 3, 4)
    assert shared_geometry_2d(4, 5) is not shared_geometry_2d(5, 4)


def test_get_substrate_shared_across_equal_shapes():
    # Two *distinct* geometry objects of equal shape map to the same
    # substrate (and hence the same neighbor table memory).
    a = get_substrate(StencilGrid2D(3, 6))
    b = get_substrate(StencilGrid2D(3, 6))
    assert a is b
    assert get_substrate(StencilGrid3D(2, 2, 3)) is get_substrate(StencilGrid3D(2, 2, 3))
    assert a is not get_substrate(StencilGrid2D(6, 3))


def test_from_grid_constructors_use_shared_geometry():
    w = _weights((4, 7))
    one = IVCInstance.from_grid_2d(w)
    two = IVCInstance.from_grid_2d(w * 2)
    assert one.geometry is two.geometry
    w3 = _weights((2, 3, 2))
    assert IVCInstance.from_grid_3d(w3).geometry is IVCInstance.from_grid_3d(w3).geometry


def test_caches_are_lru_bounded():
    clear_caches()
    first = shared_geometry_2d(1, 1)
    for k in range(2, CACHE_SIZE + 3):  # evicts the (1, 1) entry
        shared_geometry_2d(1, k)
    sizes = cache_sizes()
    assert sizes["geometries"] <= CACHE_SIZE
    assert shared_geometry_2d(1, 1) is not first
    clear_caches()
    assert cache_sizes() == {"geometries": 0, "substrates": 0}


def test_substrate_stats_track_hits_misses_evictions():
    clear_caches()
    before = substrate_stats()
    shared_geometry_2d(2, 9)  # cold: miss
    shared_geometry_2d(2, 9)  # warm: hit
    after = substrate_stats()
    assert after["geometries"]["misses"] == before["geometries"]["misses"] + 1
    assert after["geometries"]["hits"] == before["geometries"]["hits"] + 1
    assert after["geometries"]["size"] >= 1
    assert after["geometries"]["maxsize"] == CACHE_SIZE

    evicted_before = after["geometries"]["evictions"]
    for k in range(1, CACHE_SIZE + 2):  # overflow the cache by one
        shared_geometry_2d(3, k)
    assert substrate_stats()["geometries"]["evictions"] > evicted_before

    # Counters are process-lifetime monotonic: clearing drops entries only.
    clear_caches()
    cleared = substrate_stats()
    assert cleared["geometries"]["size"] == 0
    assert cleared["geometries"]["hits"] >= after["geometries"]["hits"]


def test_neighbor_table_matches_csr():
    for geometry in (StencilGrid2D(3, 4), StencilGrid3D(2, 3, 2), StencilGrid2D(1, 1)):
        substrate = get_substrate(geometry)
        csr = substrate.geometry.csr
        n = csr.num_vertices
        for v in range(n):
            row = substrate.nbr_table[v]
            real = sorted(int(u) for u in row if u != n)
            assert real == sorted(int(u) for u in csr.neighbors(v))
            # Padding is exactly the sentinel n, nothing else out of range.
            assert all(0 <= int(u) <= n for u in row)


def test_engine_pool_with_fast_paths_matches_serial_reference():
    # The cache is per-process (workers build their own lazily), so a pooled
    # fast-path run must reproduce the serial reference run cell for cell.
    instances = [
        IVCInstance.from_grid_2d(_weights((5, 6), seed=1), name="a"),
        IVCInstance.from_grid_2d(_weights((5, 6), seed=2), name="b"),
        IVCInstance.from_grid_3d(_weights((3, 3, 2), seed=3), name="c"),
    ]
    names = ["GLL", "GLF", "BD", "BDP"]
    ref = run_grid(instances, names, jobs=1, fast_paths=False, capture_starts=True)
    pooled = run_grid(instances, names, jobs=2, fast_paths=True, capture_starts=True)
    assert [r.status for r in pooled] == ["ok"] * len(ref)
    for r, p in zip(ref, pooled):
        assert (r.instance, r.algorithm) == (p.instance, p.algorithm)
        assert r.maxcolor == p.maxcolor
        assert r.starts == p.starts
