"""Differential tests: wavefront kernels vs the sequential reference loops.

Every test here compares ``fast=True`` against ``fast=False`` on the *same*
instance and order and requires bit-identical starts — the kernel contract
is exact replay of the reference scan, not merely an equally good coloring.
Degenerate grids (single row/column/vertex) and zero-weight vertices are
covered explicitly.
"""

import numpy as np
import pytest

from repro.core import greedy_engine
from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.core.greedy_engine import greedy_color, greedy_recolor_pass
from repro.core.orderings import (
    identity_order,
    largest_first_order,
    line_by_line_order,
    random_order,
    smallest_last_order,
    zorder_order,
)
from repro.core.problem import IVCInstance
from repro.kernels import wavefront
from repro.kernels.config import fast_paths, fast_paths_enabled, set_fast_paths
from repro.kernels.substrate import get_substrate

SHAPES_2D = [(1, 1), (1, 5), (5, 1), (2, 2), (4, 7), (6, 6)]
SHAPES_3D = [(1, 1, 1), (3, 1, 2), (2, 2, 2), (3, 4, 2)]

ORDERINGS = {
    "identity": lambda inst: identity_order(inst.num_vertices),
    "line_by_line": line_by_line_order,
    "zorder": zorder_order,
    "largest_first": largest_first_order,
    "smallest_last": smallest_last_order,
    "random": lambda inst: random_order(inst, seed=7),
}


def _instance(shape, seed=0, zero_frac=0.25):
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 30, size=shape)
    weights[rng.random(size=shape) < zero_frac] = 0
    if len(shape) == 2:
        return IVCInstance.from_grid_2d(weights)
    return IVCInstance.from_grid_3d(weights)


def test_uncolored_sentinels_agree():
    # wavefront.py keeps its own literal to avoid an import cycle; the two
    # must never drift apart.
    assert wavefront.UNCOLORED == greedy_engine.UNCOLORED


def test_auto_mode_size_threshold():
    # Auto mode (fast=None) only engages kernels from MIN_AUTO_SIZE vertices
    # up; explicit True/False win unconditionally.
    from repro.kernels.config import MIN_AUTO_SIZE, resolve_fast_for

    prev = fast_paths_enabled()
    try:
        set_fast_paths(True)
        assert resolve_fast_for(None, MIN_AUTO_SIZE) is True
        assert resolve_fast_for(None, MIN_AUTO_SIZE - 1) is False
        assert resolve_fast_for(True, 1) is True
        assert resolve_fast_for(False, 10**9) is False
        set_fast_paths(False)
        assert resolve_fast_for(None, 10**9) is False
        assert resolve_fast_for(True, 1) is True
    finally:
        set_fast_paths(prev)


def test_fast_paths_switch_roundtrip():
    prev = fast_paths_enabled()
    try:
        set_fast_paths(False)
        assert not fast_paths_enabled()
        with fast_paths(True):
            assert fast_paths_enabled()
        assert not fast_paths_enabled()
    finally:
        set_fast_paths(prev)


@pytest.mark.parametrize("order_name", sorted(ORDERINGS))
@pytest.mark.parametrize("shape", SHAPES_2D + SHAPES_3D)
def test_greedy_kernel_identical_to_reference(shape, order_name):
    inst = _instance(shape, seed=len(shape) * 10 + 1)
    order = np.asarray(ORDERINGS[order_name](inst), dtype=np.int64)
    ref = greedy_color(inst, order, fast=False)
    fast = greedy_color(inst, order, fast=True)
    assert np.array_equal(ref.starts, fast.starts)
    assert fast.is_valid()


@pytest.mark.parametrize("shape", SHAPES_2D + SHAPES_3D)
def test_recolor_kernel_identical_to_reference(shape):
    inst = _instance(shape, seed=3)
    starts = greedy_color(inst, identity_order(inst.num_vertices), fast=False).starts
    order = np.random.default_rng(5).permutation(inst.num_vertices).astype(np.int64)
    ref = greedy_recolor_pass(inst, starts, order, fast=False)
    fast = greedy_recolor_pass(inst, starts, order, fast=True)
    assert np.array_equal(ref, fast)


def test_all_zero_weights_color_at_zero():
    inst = _instance((4, 4), zero_frac=1.1)  # every weight zeroed
    coloring = greedy_color(inst, identity_order(inst.num_vertices), fast=True)
    assert np.array_equal(coloring.starts, np.zeros(inst.num_vertices, dtype=np.int64))


def _assert_valid_wavefront(substrate, order):
    """Batches must be pairwise non-adjacent and respect the order's DAG."""
    verts, ptr = substrate.wavefront_for(order)
    n = substrate.num_vertices
    assert sorted(verts.tolist()) == list(range(n))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    batch_of = np.empty(n, dtype=np.int64)
    for b in range(len(ptr) - 1):
        batch_of[verts[ptr[b] : ptr[b + 1]]] = b
    for v in range(n):
        for u in substrate.nbr_table[v]:
            u = int(u)
            if u == n:
                continue
            assert batch_of[u] != batch_of[v]
            if rank[u] < rank[v]:
                assert batch_of[u] < batch_of[v]
            else:
                assert batch_of[u] > batch_of[v]


@pytest.mark.parametrize("order_name", ["line_by_line", "largest_first", "random"])
@pytest.mark.parametrize("shape", [(4, 5), (1, 6), (3, 3, 2)])
def test_wavefront_batches_valid(shape, order_name):
    inst = _instance(shape, seed=2)
    substrate = get_substrate(inst.geometry)
    order = np.asarray(ORDERINGS[order_name](inst), dtype=np.int64)
    _assert_valid_wavefront(substrate, order)


def test_wavefront_schedule_cached_per_order():
    inst = _instance((5, 5), seed=4)
    substrate = get_substrate(inst.geometry)
    order = np.asarray(line_by_line_order(inst), dtype=np.int64)
    first = substrate.wavefront_for(order)
    again = substrate.wavefront_for(order.copy())  # equal content, new array
    assert first[0] is again[0] and first[1] is again[1]


@pytest.mark.parametrize("shape", [(1, 1), (1, 7), (5, 6), (3, 4, 2)])
def test_every_registry_algorithm_identical_with_fast_paths(shape):
    # The registry-level contract: color_with(fast=True) — fast_fn or not —
    # must reproduce the reference coloring for every registered algorithm.
    inst = _instance(shape, seed=11)
    for name in ALGORITHMS:
        ref = color_with(inst, name, fast=False)
        fast = color_with(inst, name, fast=True)
        assert np.array_equal(ref.starts, fast.starts), name


def test_generic_graph_falls_back_to_reference():
    # A geometry-less instance must silently take the reference loop.
    inst = IVCInstance.from_edges(
        4, [(0, 1), (1, 2), (2, 3), (3, 0)], [3, 1, 2, 4], name="cycle"
    )
    ref = greedy_color(inst, identity_order(4), fast=False)
    fast = greedy_color(inst, identity_order(4), fast=True)
    assert np.array_equal(ref.starts, fast.starts)
