"""Tests for the vectorized kernel subsystem (:mod:`repro.kernels`)."""
